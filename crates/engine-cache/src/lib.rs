//! The System-Y-class layer: an **IDE middleware** over another engine.
//!
//! The paper's Exp 5 (§5.6) examined a commercial IDE system ("System Y")
//! running with MonetDB as its backend and found it adds a fixed 1–2 s
//! per-query overhead (rendering / middleware) on top of backend latency,
//! with *no* prefetching or speculation. [`CachingAdapter`] reproduces
//! exactly that: it forwards queries to an inner [`SystemAdapter`], charges
//! a constant overhead per query, and — the one optimization such layers do
//! have — answers *repeated identical* queries from an exact-result cache.
//!
//! Settings (including the scan `workers` knob for intra-query parallel
//! morsel dispatch) pass through `prepare` to the inner engine untouched,
//! so the backend parallelizes exactly as it would without the middleware.
//! Cached results stay valid across worker counts because parallel scans
//! are bit-identical to sequential ones.

use idebench_core::{
    AggResult, CoreError, PrepStats, Query, QueryHandle, Settings, StepStatus, SystemAdapter,
};
use idebench_storage::Dataset;
use parking_lot::Mutex;
use rustc_hash::FxHashMap;
use std::sync::Arc;

/// Configuration of the caching/overhead layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheConfig {
    /// Fixed overhead charged to every query, in virtual seconds (the
    /// middle of the paper's observed 1–2 s); converted to work units at
    /// prepare time.
    pub overhead_s: f64,
    /// Whether identical repeated queries are answered from cache.
    pub enable_cache: bool,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            overhead_s: 1.5,
            enable_cache: true,
        }
    }
}

type ResultCache = Arc<Mutex<FxHashMap<u64, AggResult>>>;

/// A middleware adapter wrapping any inner engine.
pub struct CachingAdapter<E> {
    inner: E,
    config: CacheConfig,
    cache: ResultCache,
    name: String,
    overhead_units: u64,
}

impl<E: SystemAdapter> CachingAdapter<E> {
    /// Wraps `inner` with the given configuration.
    pub fn new(inner: E, config: CacheConfig) -> Self {
        let name = format!("cache+{}", inner.name());
        CachingAdapter {
            inner,
            config,
            cache: Arc::new(Mutex::new(FxHashMap::default())),
            name,
            overhead_units: 0,
        }
    }

    /// Wraps `inner` with the default 1.5 s overhead and caching on.
    pub fn with_defaults(inner: E) -> Self {
        Self::new(inner, CacheConfig::default())
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// Number of cached results.
    pub fn cached_results(&self) -> usize {
        self.cache.lock().len()
    }
}

impl<E: SystemAdapter + 'static> CachingAdapter<E> {
    /// Hosts the middleware layer as a shared
    /// [`idebench_core::EngineService`]: one `CachingAdapter` instance per
    /// session (each analyst's IDE keeps its own private result store, as
    /// System Y does), created lazily over `make_inner` backends.
    pub fn service(
        config: CacheConfig,
        mut make_inner: impl FnMut(idebench_core::SessionId) -> E + Send + 'static,
    ) -> idebench_core::ServiceCore {
        // The name probe ("cache+<inner>") becomes session 0's adapter, so
        // `make_inner` runs exactly once per session.
        let probe = CachingAdapter::new(make_inner(0), config);
        let name = probe.name.clone();
        let mut probe = Some(probe);
        idebench_core::ServiceCore::per_session_adapters(name, move |session| {
            if session == 0 {
                if let Some(p) = probe.take() {
                    return Box::new(p);
                }
            }
            Box::new(CachingAdapter::new(make_inner(session), config))
        })
    }
}

impl<E: SystemAdapter> SystemAdapter for CachingAdapter<E> {
    fn name(&self) -> &str {
        &self.name
    }

    fn prepare(&mut self, dataset: &Dataset, settings: &Settings) -> Result<PrepStats, CoreError> {
        self.cache.lock().clear();
        self.overhead_units = settings.seconds_to_units(self.config.overhead_s);
        self.inner.prepare(dataset, settings)
    }

    fn workflow_start(&mut self) {
        self.inner.workflow_start();
    }

    fn workflow_end(&mut self) {
        self.inner.workflow_end();
    }

    fn submit(&mut self, query: &Query) -> Box<dyn QueryHandle> {
        let fp = query.fingerprint();
        if self.config.enable_cache {
            if let Some(hit) = self.cache.lock().get(&fp).cloned() {
                return Box::new(CachedHandle {
                    overhead_remaining: self.overhead_units,
                    result: hit,
                });
            }
        }
        let inner_handle = self.inner.submit(query);
        Box::new(ForwardingHandle {
            inner: inner_handle,
            overhead_remaining: self.overhead_units,
            cache: if self.config.enable_cache {
                Some((Arc::clone(&self.cache), fp))
            } else {
                None
            },
        })
    }

    fn on_link(&mut self, source_query: &Query, target_query: &Query) {
        self.inner.on_link(source_query, target_query);
    }

    fn on_think(&mut self, budget_units: u64) {
        self.inner.on_think(budget_units);
    }

    fn on_discard(&mut self, viz_name: &str) {
        self.inner.on_discard(viz_name);
    }
}

/// Serves a cache hit after paying the per-query overhead.
struct CachedHandle {
    overhead_remaining: u64,
    result: AggResult,
}

impl QueryHandle for CachedHandle {
    fn step(&mut self, granted: u64) -> StepStatus {
        let pay = self.overhead_remaining.min(granted);
        self.overhead_remaining -= pay;
        if self.overhead_remaining == 0 {
            StepStatus::Done { units: pay }
        } else {
            StepStatus::Running { units: pay }
        }
    }

    fn snapshot(&self) -> Option<AggResult> {
        if self.overhead_remaining == 0 {
            Some(self.result.clone())
        } else {
            None
        }
    }

    fn is_done(&self) -> bool {
        self.overhead_remaining == 0
    }
}

/// Forwards to the inner engine's handle after paying the overhead; caches
/// exact final results.
struct ForwardingHandle {
    inner: Box<dyn QueryHandle>,
    overhead_remaining: u64,
    cache: Option<(ResultCache, u64)>,
}

impl ForwardingHandle {
    fn maybe_cache(&self) {
        if let Some((cache, fp)) = &self.cache {
            if self.inner.is_done() {
                if let Some(result) = self.inner.snapshot() {
                    if result.exact {
                        cache.lock().insert(*fp, result);
                    }
                }
            }
        }
    }
}

impl QueryHandle for ForwardingHandle {
    fn step(&mut self, granted: u64) -> StepStatus {
        let mut used = 0u64;
        if self.overhead_remaining > 0 {
            let pay = self.overhead_remaining.min(granted);
            self.overhead_remaining -= pay;
            used += pay;
        }
        if used >= granted && self.overhead_remaining > 0 {
            return StepStatus::Running { units: used };
        }
        let status = self.inner.step(granted - used);
        used += status.units();
        if status.is_done() {
            self.maybe_cache();
            StepStatus::Done { units: used }
        } else {
            StepStatus::Running { units: used }
        }
    }

    fn snapshot(&self) -> Option<AggResult> {
        if self.overhead_remaining > 0 {
            return None; // still "rendering"
        }
        self.inner.snapshot()
    }

    fn is_done(&self) -> bool {
        self.overhead_remaining == 0 && self.inner.is_done()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idebench_core::spec::{AggregateSpec, BinDef};
    use idebench_core::VizSpec;
    use idebench_engine_exact::ExactAdapter;
    use idebench_query::execute_exact;
    use idebench_storage::{DataType, TableBuilder};

    fn dataset(n: usize) -> Dataset {
        let mut b = TableBuilder::with_fields(
            "flights",
            &[
                ("carrier", DataType::Nominal),
                ("dep_delay", DataType::Float),
            ],
        );
        for i in 0..n {
            let c = if i % 2 == 0 { "AA" } else { "DL" };
            b.push_row(&[c.into(), (i as f64).into()]).unwrap();
        }
        Dataset::Denormalized(Arc::new(b.finish()))
    }

    fn query() -> Query {
        let spec = VizSpec::new(
            "v",
            "flights",
            vec![BinDef::Nominal {
                dimension: "carrier".into(),
            }],
            vec![AggregateSpec::count()],
        );
        Query::for_viz(&spec, None)
    }

    /// Test helper: overhead expressed in work units at the default 1M
    /// units/s rate.
    fn adapter(overhead_units: u64) -> CachingAdapter<ExactAdapter> {
        CachingAdapter::new(
            ExactAdapter::with_defaults(),
            CacheConfig {
                overhead_s: overhead_units as f64 / 1e6,
                enable_cache: true,
            },
        )
    }

    #[test]
    fn overhead_delays_inner_execution() {
        let ds = dataset(100);
        let mut a = adapter(1_000);
        a.prepare(&ds, &Settings::default()).unwrap();
        let mut h = a.submit(&query());
        let st = h.step(500);
        assert_eq!(st.units(), 500);
        assert!(h.snapshot().is_none());
        // Pay remaining overhead + full inner scan.
        while !h.step(10_000).is_done() {}
        let snap = h.snapshot().unwrap();
        assert_eq!(snap, execute_exact(&ds, &query()).unwrap());
    }

    #[test]
    fn worker_settings_pass_through_to_inner_engine() {
        let ds = dataset(20_000);
        let mut a = adapter(100);
        a.prepare(&ds, &Settings::default().with_workers(4))
            .unwrap();
        let mut h = a.submit(&query());
        while !h.step(1_000_000).is_done() {}
        // The inner engine's parallel scan is bit-identical to ground truth.
        assert_eq!(h.snapshot().unwrap(), execute_exact(&ds, &query()).unwrap());
    }

    #[test]
    fn repeated_query_served_from_cache() {
        let ds = dataset(10_000);
        let mut a = adapter(100);
        a.prepare(&ds, &Settings::default()).unwrap();
        let mut h1 = a.submit(&query());
        while !h1.step(100_000).is_done() {}
        drop(h1);
        assert_eq!(a.cached_results(), 1);

        // The repeat costs only the overhead (100 units), not a scan.
        let mut h2 = a.submit(&query());
        let st = h2.step(100);
        assert!(st.is_done());
        assert_eq!(st.units(), 100);
        assert_eq!(
            h2.snapshot().unwrap(),
            execute_exact(&ds, &query()).unwrap()
        );
    }

    #[test]
    fn cancelled_inner_query_is_not_cached() {
        let ds = dataset(100_000);
        let mut a = adapter(10);
        a.prepare(&ds, &Settings::default()).unwrap();
        let mut h = a.submit(&query());
        h.step(50); // cancelled long before the scan completes
        drop(h);
        assert_eq!(a.cached_results(), 0);
    }

    #[test]
    fn cache_disabled_always_reexecutes() {
        let ds = dataset(1_000);
        let mut a = CachingAdapter::new(
            ExactAdapter::with_defaults(),
            CacheConfig {
                overhead_s: 0.0,
                enable_cache: false,
            },
        );
        a.prepare(&ds, &Settings::default()).unwrap();
        let mut h1 = a.submit(&query());
        while !h1.step(100_000).is_done() {}
        drop(h1);
        assert_eq!(a.cached_results(), 0);
        let mut h2 = a.submit(&query());
        let st = h2.step(10);
        assert!(!st.is_done(), "must re-execute the scan");
    }

    #[test]
    fn name_reflects_layering() {
        let a = adapter(1);
        assert_eq!(a.name(), "cache+exact");
    }

    #[test]
    fn service_keeps_private_store_per_session() {
        use idebench_core::{EngineService, QueryOptions, TicketStatus};
        let ds = dataset(5_000);
        let svc = CachingAdapter::service(
            CacheConfig {
                overhead_s: 100.0 / 1e6, // 100 units at the default rate
                enable_cache: true,
            },
            |_| ExactAdapter::with_defaults(),
        );
        assert_eq!(svc.name(), "cache+exact");
        svc.open_session(0, &ds, &Settings::default()).unwrap();
        svc.open_session(1, &ds, &Settings::default()).unwrap();
        // Session 0 executes, then repeats: the repeat costs only the
        // middleware overhead.
        let t = svc.submit(&query(), QueryOptions::for_session(0));
        assert!(t.drive().is_done());
        drop(t);
        let t = svc.submit(&query(), QueryOptions::for_session(0));
        assert_eq!(t.drive(), TicketStatus::Done { spent: 100 });
        drop(t);
        // Session 1's store is private: its first submission re-executes.
        let t = svc.submit(&query(), QueryOptions::for_session(1));
        let st = t.drive();
        assert!(st.is_done());
        assert!(st.spent() > 100, "no cross-session result sharing");
    }

    #[test]
    fn prepare_clears_cache_and_delegates() {
        let ds = dataset(1_000);
        let mut a = adapter(0);
        let prep = a.prepare(&ds, &Settings::default()).unwrap();
        assert!(prep.load_units > 0);
        let mut h = a.submit(&query());
        while !h.step(100_000).is_done() {}
        drop(h);
        assert_eq!(a.cached_results(), 1);
        let other = dataset(500);
        a.prepare(&other, &Settings::default()).unwrap();
        assert_eq!(a.cached_results(), 0);
    }
}
