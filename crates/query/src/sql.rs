//! SQL rendering of queries — the translation shown in paper Figure 4.
//!
//! The engines in this workspace execute logical plans directly; the SQL
//! text exists for report readability, for adapter implementations against
//! external SQL systems, and as documentation parity with the paper.

use idebench_core::{AggFunc, BinDef, FilterExpr, Predicate, Query};
use idebench_storage::StarSchema;
use std::fmt::Write as _;

/// Renders `query` as SQL over a de-normalized table, or with star-schema
/// joins when `star` is given and the query touches dimension columns.
pub fn to_sql(query: &Query, star: Option<&StarSchema>) -> String {
    let mut select_items: Vec<String> = Vec::new();
    let mut group_by: Vec<String> = Vec::new();

    for (i, bin) in query.binning().iter().enumerate() {
        let expr = match bin {
            BinDef::Nominal { dimension } => dimension.clone(),
            BinDef::Width {
                dimension,
                width,
                anchor,
            } => {
                if *anchor == 0.0 {
                    format!("FLOOR({dimension} / {width}) * {width}")
                } else {
                    format!("FLOOR(({dimension} - {anchor}) / {width}) * {width} + {anchor}")
                }
            }
            BinDef::Count { dimension, bins } => {
                format!("WIDTH_BUCKET({dimension}, MIN({dimension}), MAX({dimension}), {bins})")
            }
        };
        select_items.push(format!("{expr} AS bin_{i}"));
        group_by.push(format!("bin_{i}"));
    }

    for agg in query.aggregates() {
        let item = match (&agg.func, &agg.dimension) {
            (AggFunc::Count, _) => "COUNT(*)".to_string(),
            (f, Some(d)) => format!("{}({d})", f.sql_name()),
            (f, None) => format!("{}(*)", f.sql_name()),
        };
        select_items.push(item);
    }

    let mut sql = String::with_capacity(256);
    let _ = write!(
        sql,
        "SELECT {} FROM {}",
        select_items.join(", "),
        query.source()
    );

    // Join clauses for dimension-table columns.
    if let Some(star) = star {
        let mut joined: Vec<&str> = Vec::new();
        for col in query.referenced_columns() {
            if star.fact().schema().index_of(col).is_ok() {
                continue;
            }
            if let Some((spec, _)) = star.dimension_of_column(col) {
                if !joined.contains(&spec.table_name.as_str()) {
                    joined.push(&spec.table_name);
                    let _ = write!(
                        sql,
                        " JOIN {dim} ON {fact}.{fk} = {dim}.rowid",
                        dim = spec.table_name,
                        fact = star.fact().name(),
                        fk = spec.fk_name
                    );
                }
            }
        }
    }

    if let Some(filter) = query.filter() {
        let _ = write!(sql, " WHERE {}", filter_sql(filter));
    }
    let _ = write!(sql, " GROUP BY {}", group_by.join(", "));
    sql
}

fn filter_sql(expr: &FilterExpr) -> String {
    match expr {
        FilterExpr::Pred(Predicate::Range { column, min, max }) => {
            match (min.is_finite(), max.is_finite()) {
                (true, true) => format!("({column} >= {min} AND {column} < {max})"),
                (true, false) => format!("{column} >= {min}"),
                (false, true) => format!("{column} < {max}"),
                (false, false) => "TRUE".to_string(),
            }
        }
        FilterExpr::Pred(Predicate::In { column, values }) => {
            let quoted: Vec<String> = values.iter().map(|v| format!("'{v}'")).collect();
            format!("{column} IN ({})", quoted.join(", "))
        }
        FilterExpr::And(children) => {
            if children.is_empty() {
                return "TRUE".to_string();
            }
            let parts: Vec<String> = children.iter().map(filter_sql).collect();
            format!("({})", parts.join(" AND "))
        }
        FilterExpr::Or(children) => {
            if children.is_empty() {
                return "FALSE".to_string();
            }
            let parts: Vec<String> = children.iter().map(filter_sql).collect();
            format!("({})", parts.join(" OR "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idebench_core::spec::AggregateSpec;
    use idebench_core::VizSpec;

    fn base_query(binning: Vec<BinDef>, filter: Option<FilterExpr>) -> Query {
        let spec = VizSpec::new(
            "v",
            "flights",
            binning,
            vec![
                AggregateSpec::count(),
                AggregateSpec::over(AggFunc::Avg, "arr_delay"),
            ],
        );
        Query::for_viz(&spec, filter)
    }

    #[test]
    fn figure4_style_nominal_count() {
        let q = base_query(
            vec![BinDef::Nominal {
                dimension: "carrier".into(),
            }],
            None,
        );
        let sql = to_sql(&q, None);
        assert_eq!(
            sql,
            "SELECT carrier AS bin_0, COUNT(*), AVG(arr_delay) FROM flights GROUP BY bin_0"
        );
    }

    #[test]
    fn width_binning_renders_floor() {
        let q = base_query(
            vec![BinDef::Width {
                dimension: "dep_delay".into(),
                width: 10.0,
                anchor: 0.0,
            }],
            None,
        );
        let sql = to_sql(&q, None);
        assert!(sql.contains("FLOOR(dep_delay / 10) * 10 AS bin_0"));
    }

    #[test]
    fn anchored_width_binning() {
        let q = base_query(
            vec![BinDef::Width {
                dimension: "dep_delay".into(),
                width: 5.0,
                anchor: 2.5,
            }],
            None,
        );
        assert!(to_sql(&q, None).contains("FLOOR((dep_delay - 2.5) / 5) * 5 + 2.5"));
    }

    #[test]
    fn where_clause_with_in_and_range() {
        let filter = FilterExpr::Pred(Predicate::In {
            column: "carrier".into(),
            values: vec!["AA".into(), "DL".into()],
        })
        .and(FilterExpr::Pred(Predicate::Range {
            column: "dep_delay".into(),
            min: 0.0,
            max: 60.0,
        }));
        let q = base_query(
            vec![BinDef::Nominal {
                dimension: "carrier".into(),
            }],
            Some(filter),
        );
        let sql = to_sql(&q, None);
        assert!(
            sql.contains("WHERE (carrier IN ('AA', 'DL') AND (dep_delay >= 0 AND dep_delay < 60))")
        );
    }

    #[test]
    fn open_ranges_render_single_sided() {
        let q = base_query(
            vec![BinDef::Nominal {
                dimension: "carrier".into(),
            }],
            Some(FilterExpr::Pred(Predicate::Range {
                column: "dep_delay".into(),
                min: 30.0,
                max: f64::INFINITY,
            })),
        );
        assert!(to_sql(&q, None).contains("WHERE dep_delay >= 30"));
    }

    #[test]
    fn two_dim_group_by() {
        let q = base_query(
            vec![
                BinDef::Width {
                    dimension: "dep_delay".into(),
                    width: 10.0,
                    anchor: 0.0,
                },
                BinDef::Width {
                    dimension: "arr_delay".into(),
                    width: 10.0,
                    anchor: 0.0,
                },
            ],
            None,
        );
        assert!(to_sql(&q, None).ends_with("GROUP BY bin_0, bin_1"));
    }
}
