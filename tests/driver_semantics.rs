//! Driver-semantics integration tests: time-requirement enforcement, think
//! time, link fan-out, and cancellation, observed through a real engine.

use idebench::core::spec::{AggregateSpec, BinDef, SelCoord, Selection};
use idebench::core::{BenchmarkDriver, ExecutionMode, Interaction, Settings, VizSpec};
use idebench::engine_exact::ExactAdapter;
use idebench::engine_progressive::ProgressiveAdapter;
use idebench::storage::Dataset;
use idebench::workflow::{Workflow, WorkflowType};
use std::sync::Arc;

const ROWS: usize = 50_000;

fn dataset() -> Dataset {
    Dataset::Denormalized(Arc::new(idebench::datagen::flights::generate(ROWS, 21)))
}

fn settings(tr_ms: u64, think_ms: u64) -> Settings {
    Settings::default()
        .with_time_requirement_ms(tr_ms)
        .with_think_time_ms(think_ms)
        .with_execution(ExecutionMode::Virtual { work_rate: 1e4 })
}

fn carrier_viz(name: &str) -> VizSpec {
    VizSpec::new(
        name,
        "flights",
        vec![BinDef::Nominal {
            dimension: "carrier".into(),
        }],
        vec![AggregateSpec::count()],
    )
}

#[test]
fn cancelled_queries_end_exactly_at_the_time_requirement() {
    // Full scans cost ≈ ROWS x 1.5 units ≈ 7.5 virtual s at 10k units/s.
    let ds = dataset();
    let driver = BenchmarkDriver::new(settings(1_000, 0));
    let mut adapter = ExactAdapter::with_defaults();
    let wf = Workflow::new(
        "w",
        WorkflowType::Independent,
        vec![Interaction::CreateViz {
            viz: carrier_viz("a"),
        }],
    );
    let outcome = driver.run_workflow(&mut adapter, &ds, &wf).unwrap();
    let m = &outcome.query_results[0];
    assert!(m.tr_violated);
    let elapsed = m.end_ms - m.start_ms;
    assert!(
        (elapsed - 1_000.0).abs() < 2.0,
        "cancellation at the TR boundary, got {elapsed} ms"
    );
}

#[test]
fn completed_queries_record_true_latency() {
    let ds = dataset();
    let driver = BenchmarkDriver::new(settings(60_000, 0));
    let mut adapter = ExactAdapter::with_defaults();
    let wf = Workflow::new(
        "w",
        WorkflowType::Independent,
        vec![Interaction::CreateViz {
            viz: carrier_viz("a"),
        }],
    );
    let outcome = driver.run_workflow(&mut adapter, &ds, &wf).unwrap();
    let m = &outcome.query_results[0];
    assert!(!m.tr_violated);
    let elapsed = m.end_ms - m.start_ms;
    assert!(
        elapsed > 1_000.0 && elapsed < 60_000.0,
        "latency recorded, got {elapsed} ms"
    );
}

#[test]
fn think_time_advances_clock_between_interactions() {
    let ds = dataset();
    let driver = BenchmarkDriver::new(settings(500, 2_000));
    let mut adapter = ProgressiveAdapter::with_defaults();
    let wf = Workflow::new(
        "w",
        WorkflowType::Independent,
        vec![
            Interaction::CreateViz {
                viz: carrier_viz("a"),
            },
            Interaction::CreateViz {
                viz: carrier_viz("b"),
            },
        ],
    );
    let outcome = driver.run_workflow(&mut adapter, &ds, &wf).unwrap();
    let first = &outcome.query_results[0];
    let second = &outcome.query_results[1];
    // Second interaction starts after first query (≤ TR) + think time.
    let gap = second.start_ms - first.start_ms;
    assert!(
        (gap - (500.0 + 2_000.0)).abs() < 2.0,
        "expected TR + think gap, got {gap} ms"
    );
    assert!((outcome.total_ms - 2.0 * 2_500.0).abs() < 4.0);
}

#[test]
fn selection_on_linked_vizs_triggers_concurrent_updates() {
    let ds = dataset();
    let driver = BenchmarkDriver::new(settings(500, 100));
    let mut adapter = ProgressiveAdapter::with_defaults();
    let wf = Workflow::new(
        "w",
        WorkflowType::OneToN,
        vec![
            Interaction::CreateViz {
                viz: carrier_viz("hub"),
            },
            Interaction::CreateViz {
                viz: carrier_viz("t1"),
            },
            Interaction::CreateViz {
                viz: carrier_viz("t2"),
            },
            Interaction::Link {
                source: "hub".into(),
                target: "t1".into(),
            },
            Interaction::Link {
                source: "hub".into(),
                target: "t2".into(),
            },
            Interaction::Select {
                viz: "hub".into(),
                selection: Some(Selection {
                    bins: vec![vec![SelCoord::Category("C00".into())]],
                }),
            },
        ],
    );
    let outcome = driver.run_workflow(&mut adapter, &ds, &wf).unwrap();
    let last: Vec<_> = outcome
        .query_results
        .iter()
        .filter(|m| m.interaction_id == 5)
        .collect();
    assert_eq!(last.len(), 2, "both targets update");
    assert!(last.iter().all(|m| m.concurrent == 2));
    // Both updates carry the selection filter.
    assert!(last.iter().all(|m| m.query.filter_specificity() == 1));
    // Parallel lanes: both share the same start timestamp.
    assert_eq!(last[0].start_ms, last[1].start_ms);
}

#[test]
fn progressive_results_complete_under_generous_tr() {
    let ds = dataset();
    let driver = BenchmarkDriver::new(settings(30_000, 0));
    let mut adapter = ProgressiveAdapter::with_defaults();
    let wf = Workflow::new(
        "w",
        WorkflowType::Independent,
        vec![Interaction::CreateViz {
            viz: carrier_viz("a"),
        }],
    );
    let outcome = driver.run_workflow(&mut adapter, &ds, &wf).unwrap();
    let result = outcome.query_results[0].result.as_ref().expect("snapshot");
    assert!(result.exact, "full scan converges to exact");
    assert_eq!(result.processed_fraction, 1.0);
}

#[test]
fn concurrency_penalty_slows_concurrent_lanes() {
    // With contention enabled, the 1:N fan-out processes less data per
    // lane within the same TR; with the default 0 penalty lanes are free.
    let ds = dataset();
    let wf = Workflow::new(
        "w",
        WorkflowType::OneToN,
        vec![
            Interaction::CreateViz {
                viz: carrier_viz("hub"),
            },
            Interaction::CreateViz {
                viz: carrier_viz("t1"),
            },
            Interaction::CreateViz {
                viz: carrier_viz("t2"),
            },
            Interaction::Link {
                source: "hub".into(),
                target: "t1".into(),
            },
            Interaction::Link {
                source: "hub".into(),
                target: "t2".into(),
            },
            Interaction::Select {
                viz: "hub".into(),
                selection: Some(Selection {
                    bins: vec![vec![SelCoord::Category("C00".into())]],
                }),
            },
        ],
    );
    let mut fractions = Vec::new();
    for penalty in [0.0, 1.0] {
        let mut settings = settings(500, 0);
        settings.concurrency_penalty = penalty;
        let driver = BenchmarkDriver::new(settings);
        let mut adapter = ProgressiveAdapter::with_defaults();
        let outcome = driver.run_workflow(&mut adapter, &ds, &wf).unwrap();
        let last = outcome
            .query_results
            .iter()
            .rfind(|m| m.interaction_id == 5)
            .unwrap();
        fractions.push(last.result.as_ref().map_or(0.0, |r| r.processed_fraction));
        // Elapsed time still capped at the TR.
        assert!(last.end_ms - last.start_ms <= 500.0 + 1e-6);
    }
    // penalty 1.0 with 2 concurrent lanes halves the work budget.
    assert!(
        fractions[1] < fractions[0] * 0.7,
        "contention must reduce processed fraction: {fractions:?}"
    );
}

#[test]
fn wall_clock_mode_runs_and_measures() {
    // Wall mode smoke test: tiny dataset so this finishes instantly.
    let ds = Dataset::Denormalized(Arc::new(idebench::datagen::flights::generate(2_000, 3)));
    let settings = Settings::default()
        .with_time_requirement_ms(2_000)
        .with_think_time_ms(0)
        .with_execution(ExecutionMode::Wall);
    let driver = BenchmarkDriver::new(settings);
    let mut adapter = ExactAdapter::with_defaults();
    let wf = Workflow::new(
        "w",
        WorkflowType::Independent,
        vec![Interaction::CreateViz {
            viz: carrier_viz("a"),
        }],
    );
    let outcome = driver.run_workflow(&mut adapter, &ds, &wf).unwrap();
    let m = &outcome.query_results[0];
    assert!(!m.tr_violated, "2k rows complete within a 2s wall TR");
    assert!(m.result.is_some());
    assert!(m.end_ms >= m.start_ms);
}
