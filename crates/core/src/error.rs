//! Error type for benchmark-core operations.

use std::fmt;

/// Errors produced while driving a benchmark run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// An interaction referenced a visualization that does not exist.
    UnknownViz(String),
    /// A visualization with this name already exists.
    DuplicateViz(String),
    /// Adding this link would create a cycle in the viz graph.
    LinkCycle {
        /// Link source viz.
        source: String,
        /// Link target viz.
        target: String,
    },
    /// The adapter rejected the dataset (e.g. no join support for star schemas).
    Unsupported(String),
    /// A storage-layer error bubbled up.
    Storage(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownViz(v) => write!(f, "unknown visualization: {v}"),
            CoreError::DuplicateViz(v) => write!(f, "visualization already exists: {v}"),
            CoreError::LinkCycle { source, target } => {
                write!(f, "link {source} -> {target} would create a cycle")
            }
            CoreError::Unsupported(what) => write!(f, "unsupported by system under test: {what}"),
            CoreError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<idebench_storage::StorageError> for CoreError {
    fn from(e: idebench_storage::StorageError) -> Self {
        CoreError::Storage(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(
            CoreError::UnknownViz("viz_0".into()).to_string(),
            "unknown visualization: viz_0"
        );
        assert!(CoreError::LinkCycle {
            source: "a".into(),
            target: "b".into()
        }
        .to_string()
        .contains("a -> b"));
    }

    #[test]
    fn storage_error_converts() {
        let e: CoreError = idebench_storage::StorageError::UnknownColumn("x".into()).into();
        assert!(matches!(e, CoreError::Storage(_)));
    }
}
