//! Dataset exporter: generate a benchmark dataset and write it as CSV —
//! the interchange format the paper's data-preparation experiment feeds to
//! external systems ("data stored in a CSV file can be loaded into the
//! database through an SQL interface", §5.2).
//!
//! ```sh
//! cargo run --release -p idebench-bench --bin make_dataset -- \
//!     --dataset flights --rows 1000000 --seed 42 --out flights.csv [--normalized]
//! ```
//!
//! With `--normalized`, writes `<out>` for the fact table plus one CSV per
//! dimension next to it.

use idebench_datagen::normalize_flights;
use idebench_storage::write_csv;
use std::path::PathBuf;

fn main() {
    let mut dataset = "flights".to_string();
    let mut rows = 1_000_000usize;
    let mut seed = 42u64;
    let mut out = PathBuf::from("flights.csv");
    let mut normalized = false;
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--dataset" => dataset = iter.next().unwrap_or(dataset),
            "--rows" => rows = iter.next().and_then(|v| v.parse().ok()).unwrap_or(rows),
            "--seed" => seed = iter.next().and_then(|v| v.parse().ok()).unwrap_or(seed),
            "--out" => out = iter.next().map(PathBuf::from).unwrap_or(out),
            "--normalized" => normalized = true,
            _ => {
                eprintln!(
                    "usage: make_dataset [--dataset flights|orders] [--rows N] \
                     [--seed N] [--out FILE.csv] [--normalized]"
                );
                std::process::exit(2);
            }
        }
    }

    let table = match dataset.as_str() {
        "flights" => idebench_datagen::flights::generate(rows, seed),
        "orders" => idebench_datagen::orders::generate(rows, seed),
        other => {
            eprintln!("unknown dataset {other}; use flights or orders");
            std::process::exit(2);
        }
    };

    if normalized {
        if dataset != "flights" {
            eprintln!("--normalized is defined for the flights star schema only");
            std::process::exit(2);
        }
        let star_ds = normalize_flights(&table).expect("normalization succeeds");
        let star = star_ds.as_star().expect("star schema");
        write_file(&out, |w| write_csv(star.fact(), w));
        for (spec, dim) in star.dimensions() {
            let dim_path = out.with_file_name(format!("{}.csv", spec.table_name));
            write_file(&dim_path, |w| write_csv(dim, w));
        }
    } else {
        write_file(&out, |w| write_csv(&table, w));
    }
}

fn write_file(
    path: &std::path::Path,
    write: impl FnOnce(&mut std::fs::File) -> Result<(), idebench_storage::StorageError>,
) {
    let mut file = std::fs::File::create(path).unwrap_or_else(|e| {
        eprintln!("error: {}: {e}", path.display());
        std::process::exit(1);
    });
    write(&mut file).unwrap_or_else(|e| {
        eprintln!("error: {}: {e}", path.display());
        std::process::exit(1);
    });
    let size = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    println!(
        "wrote {} ({:.1} MiB)",
        path.display(),
        size as f64 / (1 << 20) as f64
    );
}
