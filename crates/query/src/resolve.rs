//! Column resolution: binding query column names to dataset storage,
//! following star-schema foreign keys when necessary.

use idebench_core::{CoreError, Query};
use idebench_storage::{Column, Dataset, Table};

/// A query column bound to physical storage.
///
/// For de-normalized datasets `fk` is `None` and `column` indexes directly
/// by row. For star schemas, a column living in a dimension table is
/// accessed through the fact table's foreign-key column: the value for fact
/// row `r` is `column[fk[r]]`. This indirection *is* the join — engines
/// charge extra work units for it (see the engines' cost models).
#[derive(Debug, Clone, Copy)]
pub struct ResolvedColumn<'a> {
    column: &'a Column,
    fk: Option<&'a [i64]>,
}

impl<'a> ResolvedColumn<'a> {
    /// Resolves `name` against a dataset.
    pub fn new(dataset: &'a Dataset, name: &str) -> Result<Self, CoreError> {
        match dataset {
            Dataset::Denormalized(t) => Ok(ResolvedColumn {
                column: t.column(name)?,
                fk: None,
            }),
            Dataset::Star(s) => {
                if let Ok(c) = s.fact().column(name) {
                    return Ok(ResolvedColumn {
                        column: c,
                        fk: None,
                    });
                }
                let (spec, dim) = s.dimension_of_column(name).ok_or_else(|| {
                    CoreError::Storage(format!("unknown column {name} in star schema"))
                })?;
                let fk =
                    s.fact().column(&spec.fk_name)?.as_int().ok_or_else(|| {
                        CoreError::Storage(format!("fk {} not int", spec.fk_name))
                    })?;
                Ok(ResolvedColumn {
                    column: dim.column(name)?,
                    fk: Some(fk),
                })
            }
        }
    }

    /// Resolves `name` against a bare table (used for sample tables).
    pub fn on_table(table: &'a Table, name: &str) -> Result<Self, CoreError> {
        Ok(ResolvedColumn {
            column: table.column(name)?,
            fk: None,
        })
    }

    /// Whether this column is reached through a foreign key (join access).
    pub fn is_joined(&self) -> bool {
        self.fk.is_some()
    }

    /// Scan width of the column in 4-byte units (dictionary codes are 4
    /// bytes, ints/floats 8). Join-accessed columns additionally pay for the
    /// 8-byte foreign-key read and an amortized probe. Engine cost models
    /// build on this.
    pub fn width_units(&self) -> f64 {
        let own = match self.column.data() {
            idebench_storage::ColumnData::Nominal(..) => 1.0,
            _ => 2.0,
        };
        if self.fk.is_some() {
            own + 2.0 + 0.5
        } else {
            own
        }
    }

    #[inline]
    fn physical_row(&self, row: usize) -> usize {
        match self.fk {
            Some(fk) => fk[row] as usize,
            None => row,
        }
    }

    /// Numeric value at the (fact) row, `None` when null.
    #[inline]
    pub fn numeric_at(&self, row: usize) -> Option<f64> {
        self.column.numeric_at(self.physical_row(row))
    }

    /// Dictionary code at the (fact) row, `None` when null or non-nominal.
    #[inline]
    pub fn code_at(&self, row: usize) -> Option<u32> {
        let r = self.physical_row(row);
        if !self.column.is_valid(r) {
            return None;
        }
        self.column.as_nominal().map(|(codes, _)| codes[r])
    }

    /// The underlying column (dictionary access etc.).
    pub fn column(&self) -> &'a Column {
        self.column
    }

    /// Binds to typed slices for batch-kernel evaluation.
    pub(crate) fn bind(&self) -> crate::plan::BoundColumn<'a> {
        crate::plan::BoundColumn {
            data: self.column.typed(),
            validity: self.column.validity(),
            fk: self.fk,
        }
    }

    /// The column as the morsel kernels see it: flat direct slices when no
    /// join or validity stands in the way, the per-row virtualized
    /// accessor otherwise (this borrow-based path never stages).
    pub(crate) fn view(&self) -> crate::plan::ColView<'a> {
        if self.fk.is_none() && self.column.validity().is_none() {
            crate::plan::ColView::direct(self.column.typed())
        } else {
            crate::plan::ColView::Virtual(self.bind())
        }
    }
}

/// A fully-resolved query: compiled filter, binning and measure accessors,
/// valid for the lifetime of the dataset borrow.
///
/// Resolution is cheap (name lookups); engines re-resolve inside each
/// `step()` call so query handles can remain `'static`.
pub struct ResolvedQuery<'a> {
    /// Compiled filter; `None` means all rows match.
    pub filter: Option<crate::filter::CompiledFilter<'a>>,
    /// Compiled binning.
    pub binning: crate::binning::CompiledBinning<'a>,
    /// Measure column per aggregate (`None` for COUNT).
    pub measures: Vec<Option<ResolvedColumn<'a>>>,
    /// Number of fact rows.
    pub num_rows: usize,
    /// How many of the referenced columns are join-accessed (cost model).
    pub joined_columns: usize,
    /// Total scan width of all referenced columns in 4-byte units.
    pub width_units: f64,
    /// Number of columns of the fact (or single) table — row stores and
    /// tuple-reconstruction overheads scale with this.
    pub fact_arity: usize,
}

impl<'a> ResolvedQuery<'a> {
    /// Binds `query` against `dataset`.
    pub fn new(dataset: &'a Dataset, query: &Query) -> Result<Self, CoreError> {
        let filter = query
            .filter()
            .map(|f| crate::filter::CompiledFilter::compile(dataset, f))
            .transpose()?;
        let binning = crate::binning::CompiledBinning::compile(dataset, query.binning())?;
        let measures = query
            .aggregates()
            .iter()
            .map(|a| {
                a.dimension
                    .as_deref()
                    .map(|d| ResolvedColumn::new(dataset, d))
                    .transpose()
            })
            .collect::<Result<Vec<_>, _>>()?;
        let num_rows = dataset.fact_rows();
        let joined_columns = binning.joined_columns()
            + filter.as_ref().map_or(0, |f| f.joined_columns())
            + measures.iter().flatten().filter(|m| m.is_joined()).count();
        let width_units = binning.width_units()
            + filter.as_ref().map_or(0.0, |f| f.width_units())
            + measures
                .iter()
                .flatten()
                .map(ResolvedColumn::width_units)
                .sum::<f64>();
        let fact_arity = match dataset {
            Dataset::Denormalized(t) => t.num_columns(),
            Dataset::Star(s) => s.fact().num_columns(),
        };
        Ok(ResolvedQuery {
            filter,
            binning,
            measures,
            num_rows,
            joined_columns,
            width_units,
            fact_arity,
        })
    }

    /// Whether the (fact) row passes the filter.
    #[inline]
    pub fn matches(&self, row: usize) -> bool {
        self.filter.as_ref().is_none_or(|f| f.matches(row))
    }

    /// Per-row work-unit cost: 1 for the scan plus 1 per join-accessed
    /// column (the price of the FK indirection / hash probe).
    pub fn row_cost(&self) -> u64 {
        1 + self.joined_columns as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idebench_core::spec::{AggFunc, AggregateSpec, BinDef};
    use idebench_core::VizSpec;
    use idebench_storage::{DataType, DimensionSpec, StarSchema, TableBuilder, Value};
    use std::sync::Arc;

    fn denorm() -> Dataset {
        let mut b = TableBuilder::with_fields(
            "flights",
            &[
                ("carrier", DataType::Nominal),
                ("dep_delay", DataType::Float),
            ],
        );
        b.push_row(&["AA".into(), 5.0.into()]).unwrap();
        b.push_row(&["DL".into(), 15.0.into()]).unwrap();
        Dataset::Denormalized(Arc::new(b.finish()))
    }

    fn star() -> Dataset {
        let mut f = TableBuilder::with_fields(
            "flights",
            &[
                ("dep_delay", DataType::Float),
                ("carrier_key", DataType::Int),
            ],
        );
        f.push_row(&[5.0.into(), 1i64.into()]).unwrap();
        f.push_row(&[15.0.into(), 0i64.into()]).unwrap();
        let mut d = TableBuilder::with_fields("carriers", &[("carrier", DataType::Nominal)]);
        d.push_row(&[Value::Str("AA".into())]).unwrap();
        d.push_row(&[Value::Str("DL".into())]).unwrap();
        let schema = StarSchema::new(
            Arc::new(f.finish()),
            vec![(
                DimensionSpec::new("carriers", "carrier_key", vec!["carrier".into()]),
                Arc::new(d.finish()),
            )],
        )
        .unwrap();
        Dataset::Star(Arc::new(schema))
    }

    #[test]
    fn direct_column_access() {
        let ds = denorm();
        let c = ResolvedColumn::new(&ds, "dep_delay").unwrap();
        assert!(!c.is_joined());
        assert_eq!(c.numeric_at(1), Some(15.0));
    }

    #[test]
    fn star_column_goes_through_fk() {
        let ds = star();
        let c = ResolvedColumn::new(&ds, "carrier").unwrap();
        assert!(c.is_joined());
        // Row 0 has carrier_key = 1 → "DL" (code 1 in dim dictionary).
        assert_eq!(c.code_at(0), Some(1));
        assert_eq!(c.code_at(1), Some(0));
    }

    #[test]
    fn unknown_column_errors() {
        let ds = star();
        assert!(ResolvedColumn::new(&ds, "ghost").is_err());
    }

    #[test]
    fn resolved_query_costs_joins() {
        let ds = star();
        let spec = VizSpec::new(
            "v",
            "flights",
            vec![BinDef::Nominal {
                dimension: "carrier".into(),
            }],
            vec![AggregateSpec::over(AggFunc::Avg, "dep_delay")],
        );
        let q = Query::for_viz(&spec, None);
        let r = ResolvedQuery::new(&ds, &q).unwrap();
        assert_eq!(r.joined_columns, 1);
        assert_eq!(r.row_cost(), 2);
        assert_eq!(r.num_rows, 2);

        let denorm_ds = denorm();
        let q2 = Query::for_viz(&spec, None);
        let r2 = ResolvedQuery::new(&denorm_ds, &q2).unwrap();
        assert_eq!(r2.row_cost(), 1);
    }
}
