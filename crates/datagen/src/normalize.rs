//! Star-schema normalization: vertical partitioning of a de-normalized
//! table into fact + dimension tables (paper §4.2, Exp 2).

use idebench_storage::{
    Column, ColumnData, DataType, Dataset, DimensionSpec, Field, Schema, StarSchema, Table,
    TableBuilder, Value,
};
use rustc_hash::FxHashMap;
use std::sync::Arc;

/// Splits `table` into a star schema per the dimension `specs`.
///
/// For each spec, the distinct combinations of the spec's attributes become
/// the rows of a new dimension table, the attributes are removed from the
/// fact table, and an integer surrogate-key column (`spec.fk_name`) is
/// appended to the fact referencing dimension row indexes.
pub fn normalize(table: &Table, specs: &[DimensionSpec]) -> Result<Dataset, String> {
    let nrows = table.num_rows();
    let mut moved: Vec<&str> = Vec::new();
    let mut dims: Vec<(DimensionSpec, Arc<Table>)> = Vec::with_capacity(specs.len());
    let mut fk_columns: Vec<(String, Vec<i64>)> = Vec::with_capacity(specs.len());

    for spec in specs {
        let attr_cols: Vec<(usize, &Column)> = spec
            .attributes
            .iter()
            .map(|a| {
                let idx = table
                    .schema()
                    .index_of(a)
                    .map_err(|e| format!("normalize: {e}"))?;
                Ok((idx, table.column_at(idx)))
            })
            .collect::<Result<_, String>>()?;
        for a in &spec.attributes {
            if moved.contains(&a.as_str()) {
                return Err(format!("normalize: column {a} assigned to two dimensions"));
            }
            moved.push(a);
        }

        // Distinct attribute combinations → dimension rows. Combination key
        // is the tuple of per-column physical encodings.
        let mut key_to_dim: FxHashMap<Vec<u64>, i64> = FxHashMap::default();
        let mut dim_rows: Vec<usize> = Vec::new(); // representative fact row per dim row
        let mut fk = Vec::with_capacity(nrows);
        let mut key_buf: Vec<u64> = Vec::with_capacity(attr_cols.len());
        for row in 0..nrows {
            key_buf.clear();
            for (_, col) in &attr_cols {
                key_buf.push(encode_cell(col, row));
            }
            let next_id = key_to_dim.len() as i64;
            match key_to_dim.get(&key_buf) {
                Some(&id) => fk.push(id),
                None => {
                    key_to_dim.insert(key_buf.clone(), next_id);
                    dim_rows.push(row);
                    fk.push(next_id);
                }
            }
        }

        // Materialize the dimension table from representative rows.
        let mut builder = TableBuilder::new(
            spec.table_name.clone(),
            Schema::new(
                attr_cols
                    .iter()
                    .map(|(idx, _)| table.schema().fields()[*idx].clone())
                    .collect(),
            ),
        );
        let mut row_vals: Vec<Value> = Vec::with_capacity(attr_cols.len());
        for &row in &dim_rows {
            row_vals.clear();
            for (idx, _) in &attr_cols {
                row_vals.push(table.value_at(*idx, row));
            }
            builder
                .push_row(&row_vals)
                .map_err(|e| format!("normalize: {e}"))?;
        }
        dims.push((spec.clone(), Arc::new(builder.finish())));
        fk_columns.push((spec.fk_name.clone(), fk));
    }

    // Fact table: all non-moved columns plus the FK columns.
    let mut fact_fields: Vec<Field> = Vec::new();
    let mut fact_cols: Vec<Column> = Vec::new();
    for (i, field) in table.schema().fields().iter().enumerate() {
        if !moved.contains(&field.name.as_str()) {
            fact_fields.push(field.clone());
            fact_cols.push(table.column_at(i).clone());
        }
    }
    for (name, fk) in fk_columns {
        fact_fields.push(Field::new(name, DataType::Int));
        fact_cols.push(Column::int(fk));
    }
    let fact = Table::new(table.name(), Schema::new(fact_fields), fact_cols)
        .map_err(|e| format!("normalize: {e}"))?;

    let star = StarSchema::new(Arc::new(fact), dims).map_err(|e| format!("normalize: {e}"))?;
    Ok(Dataset::Star(Arc::new(star)))
}

/// The paper's Exp-2 normalization of the flights table: a `carriers`
/// dimension and an `airports` dimension keyed by the origin airport
/// ("the fact table holds foreign keys to two dimension tables (airports
/// and carriers)", §5.3).
pub fn normalize_flights(table: &Table) -> Result<Dataset, String> {
    normalize(
        table,
        &[
            DimensionSpec::new("carriers", "carrier_key", vec!["carrier".into()]),
            DimensionSpec::new(
                "airports",
                "origin_key",
                vec!["origin".into(), "origin_state".into()],
            ),
        ],
    )
}

/// Stable 64-bit encoding of one cell for distinct-combination hashing.
fn encode_cell(col: &Column, row: usize) -> u64 {
    if !col.is_valid(row) {
        return u64::MAX;
    }
    match col.data() {
        ColumnData::Float(v) => v[row].to_bits(),
        ColumnData::Int(v) => v[row] as u64,
        ColumnData::Nominal(v, _) => u64::from(v[row]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flights;

    #[test]
    fn normalize_flights_builds_two_dimensions() {
        let t = flights::generate(2_000, 5);
        let ds = normalize_flights(&t).unwrap();
        let star = ds.as_star().unwrap();
        assert_eq!(star.dimensions().len(), 2);
        let (_, carriers) = star.dimension("carriers").unwrap();
        assert!(carriers.num_rows() <= flights::NUM_CARRIERS);
        let (_, airports) = star.dimension("airports").unwrap();
        assert!(airports.num_rows() <= flights::NUM_AIRPORTS);
        // Moved columns are gone from the fact, FKs are present.
        assert!(star.fact().column("carrier").is_err());
        assert!(star.fact().column("carrier_key").is_ok());
        assert_eq!(star.fact().num_rows(), 2_000);
    }

    #[test]
    fn fk_roundtrip_reconstructs_original_values() {
        let t = flights::generate(500, 5);
        let ds = normalize_flights(&t).unwrap();
        let star = ds.as_star().unwrap();
        let (spec, carriers) = star.dimension("carriers").unwrap();
        let fk = star.fact().column(&spec.fk_name).unwrap().as_int().unwrap();
        let orig_idx = t.schema().index_of("carrier").unwrap();
        for (row, &key) in fk.iter().enumerate() {
            let original = t.value_at(orig_idx, row);
            let via_join = carriers.value_at(0, key as usize);
            assert_eq!(original, via_join, "row {row}");
        }
    }

    #[test]
    fn multi_attribute_dimension_keeps_combinations() {
        let t = flights::generate(800, 6);
        let ds = normalize_flights(&t).unwrap();
        let star = ds.as_star().unwrap();
        let (spec, airports) = star.dimension("airports").unwrap();
        let fk = star.fact().column(&spec.fk_name).unwrap().as_int().unwrap();
        let o_idx = t.schema().index_of("origin").unwrap();
        let s_idx = t.schema().index_of("origin_state").unwrap();
        for row in (0..t.num_rows()).step_by(37) {
            assert_eq!(
                t.value_at(o_idx, row),
                airports.value_at(0, fk[row] as usize)
            );
            assert_eq!(
                t.value_at(s_idx, row),
                airports.value_at(1, fk[row] as usize)
            );
        }
    }

    #[test]
    fn overlapping_specs_rejected() {
        let t = flights::generate(100, 6);
        let specs = [
            DimensionSpec::new("a", "ka", vec!["carrier".into()]),
            DimensionSpec::new("b", "kb", vec!["carrier".into()]),
        ];
        assert!(normalize(&t, &specs).is_err());
    }

    #[test]
    fn unknown_attribute_rejected() {
        let t = flights::generate(100, 6);
        let specs = [DimensionSpec::new("a", "ka", vec!["ghost".into()])];
        assert!(normalize(&t, &specs).is_err());
    }

    #[test]
    fn normalization_shrinks_serialized_size() {
        // The paper observed normalized schemas are smaller overall (§5.3).
        // In our columnar layout an 8-byte surrogate key can outweigh a
        // 4-byte dictionary code, so the honest comparison — and the one
        // that matches the paper's CSV-loaded databases — is serialized
        // (CSV) size.
        let t = flights::generate(5_000, 6);
        let ds = normalize_flights(&t).unwrap();
        let star = ds.as_star().unwrap();

        let csv_len = |table: &idebench_storage::Table| {
            let mut buf = Vec::new();
            idebench_storage::write_csv(table, &mut buf).unwrap();
            buf.len()
        };
        let denorm_bytes = csv_len(&t);
        let norm_bytes: usize = csv_len(star.fact())
            + star
                .dimensions()
                .iter()
                .map(|(_, d)| csv_len(d))
                .sum::<usize>();
        assert!(
            norm_bytes < denorm_bytes,
            "normalized {norm_bytes} >= denormalized {denorm_bytes}"
        );
    }
}
