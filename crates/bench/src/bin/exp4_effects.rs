//! **Experiment 4 (paper §5.5):** other effects.
//!
//! The paper analyzed the detailed reports for effects of bin count /
//! binning dimensionality / binning type / concurrency and "found no
//! evidence that any of the factors have a significant impact … by far the
//! most crucial factor seems to be the specificity of filter/selection
//! predicates."
//!
//! This binary regenerates that factor analysis: it reruns the mixed
//! workload on the progressive engine at TR = 1 s and groups the per-query
//! mean relative error and missing-bins by each candidate factor.

use idebench_bench::{ExpArgs, ExpContext};
use idebench_core::{DetailedReport, DetailedRow};
use idebench_workflow::WorkflowType;

fn mean<'a>(
    rows: impl Iterator<Item = &'a DetailedRow>,
    f: impl Fn(&DetailedRow) -> Option<f64>,
) -> (usize, f64) {
    let vals: Vec<f64> = rows.filter_map(f).collect();
    let n = vals.len();
    let m = if n == 0 {
        f64::NAN
    } else {
        vals.iter().sum::<f64>() / n as f64
    };
    (n, m)
}

fn print_factor(report: &DetailedReport, title: &str, classify: impl Fn(&DetailedRow) -> String) {
    println!("\n--- factor: {title} ---");
    println!(
        "{:<26} {:>7} {:>10} {:>12}",
        "level", "queries", "mean_MRE", "missing_bins"
    );
    let mut levels: Vec<String> = report.rows.iter().map(&classify).collect();
    levels.sort();
    levels.dedup();
    for level in levels {
        let (_, mre) = mean(report.rows.iter().filter(|r| classify(r) == level), |r| {
            r.metrics.rel_error_avg
        });
        let (n, missing) = mean(report.rows.iter().filter(|r| classify(r) == level), |r| {
            Some(r.metrics.missing_bins)
        });
        println!("{level:<26} {n:>7} {mre:>10.3} {missing:>12.3}");
    }
}

fn main() {
    let args = ExpArgs::parse();
    println!(
        "exp4: factor analysis on the progressive engine, {} rows, TR=1s",
        args.rows('M')
    );
    let mut ctx = ExpContext::standard(args, 'M', WorkflowType::Mixed, 10, 18);
    let settings = ctx
        .args
        .settings()
        .with_time_requirement_ms(1_000)
        .with_think_time_ms(1_000);
    let report = ctx
        .run_system("progressive", &settings)
        .expect("progressive run succeeds");

    print_factor(&report, "binning dimensionality", |r| {
        format!("{}D", r.bin_dims)
    });
    print_factor(&report, "binning type", |r| r.binning_type.clone());
    print_factor(&report, "aggregate type", |r| r.agg_type.clone());
    print_factor(&report, "concurrent queries", |r| {
        format!("{} concurrent", r.concurrent)
    });
    print_factor(&report, "filter specificity (predicates)", |r| {
        format!("{} predicates", r.filter_specificity)
    });

    ctx.args.write_json("exp4_detailed.json", &report);
    println!(
        "\nExpectation (paper): little variation across the first four factors;\n\
         filter specificity is the factor that moves the metrics."
    );
}
