//! Grouped aggregation with exact finalization and sample-based estimation.

use crate::resolve::ResolvedQuery;
use idebench_core::{AggFunc, AggResult, BinKey, BinStats};
use rustc_hash::FxHashMap;

/// Running statistics for one measure inside one bin.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MeasureAcc {
    /// Non-null observations.
    pub n: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Sum of squared observations (for variance / CIs).
    pub sumsq: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

impl MeasureAcc {
    pub(crate) fn new() -> Self {
        MeasureAcc {
            n: 0,
            sum: 0.0,
            sumsq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    #[inline]
    pub(crate) fn update(&mut self, v: f64) {
        self.n += 1;
        self.sum += v;
        self.sumsq += v * v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Sample variance (n−1 denominator); 0 for fewer than 2 observations.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let n = self.n as f64;
        ((self.sumsq - self.sum * self.sum / n) / (n - 1.0)).max(0.0)
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &MeasureAcc) {
        self.n += other.n;
        self.sum += other.sum;
        self.sumsq += other.sumsq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Accumulated state for one bin: the row count plus one [`MeasureAcc`] per
/// non-count aggregate position.
#[derive(Debug, Clone, PartialEq)]
pub struct BinAcc {
    /// Rows of the bin seen so far (drives COUNT and count-estimates).
    pub count: u64,
    /// One accumulator per aggregate (unused slots for COUNT stay empty).
    pub measures: Vec<MeasureAcc>,
}

/// Grouped accumulator: the shared heart of every engine's execution.
#[derive(Debug, Clone)]
pub struct GroupedAcc {
    /// Aggregates being computed (copied from the query).
    aggs: Vec<(AggFunc, bool)>, // (func, has_measure)
    /// Per-bin state.
    pub bins: FxHashMap<BinKey, BinAcc>,
    /// Rows scanned (matched or not) — the processed-fraction numerator.
    pub rows_seen: u64,
    /// Rows that passed the filter.
    pub rows_matched: u64,
}

impl GroupedAcc {
    /// Creates an accumulator for a resolved query's aggregates.
    pub fn for_query(resolved: &ResolvedQuery<'_>, aggs: &[idebench_core::AggregateSpec]) -> Self {
        debug_assert_eq!(resolved.measures.len(), aggs.len());
        GroupedAcc {
            aggs: aggs
                .iter()
                .map(|a| (a.func, a.dimension.is_some()))
                .collect(),
            bins: FxHashMap::default(),
            rows_seen: 0,
            rows_matched: 0,
        }
    }

    /// Assembles an accumulator from already-accumulated state (the
    /// materialization target of the vectorized batch path).
    pub(crate) fn from_parts(
        aggs: Vec<(AggFunc, bool)>,
        bins: FxHashMap<BinKey, BinAcc>,
        rows_seen: u64,
        rows_matched: u64,
    ) -> Self {
        GroupedAcc {
            aggs,
            bins,
            rows_seen,
            rows_matched,
        }
    }

    /// Processes one (fact) row: filter → bin → accumulate.
    ///
    /// Returns `true` when the row matched the filter.
    #[inline]
    pub fn process_row(&mut self, resolved: &ResolvedQuery<'_>, row: usize) -> bool {
        self.rows_seen += 1;
        if !resolved.matches(row) {
            return false;
        }
        self.rows_matched += 1;
        let Some(key) = resolved.binning.bin_of(row) else {
            return true; // matched but null bin value: contributes nowhere
        };
        let nmeasures = self.aggs.len();
        let acc = self.bins.entry(key).or_insert_with(|| BinAcc {
            count: 0,
            measures: vec![MeasureAcc::new(); nmeasures],
        });
        acc.count += 1;
        for (i, m) in resolved.measures.iter().enumerate() {
            if let Some(col) = m {
                if let Some(v) = col.numeric_at(row) {
                    acc.measures[i].update(v);
                }
            }
        }
        true
    }

    /// Exact finalization: values are the true aggregates, margins zero.
    pub fn finish_exact(&self) -> AggResult {
        let mut result = AggResult {
            bins: FxHashMap::default(),
            processed_fraction: 1.0,
            exact: true,
        };
        for (key, acc) in &self.bins {
            let values = self
                .aggs
                .iter()
                .enumerate()
                .map(|(i, (func, _))| finish_value(*func, acc, i))
                .collect();
            result.bins.insert(key.clone(), BinStats::exact(values));
        }
        result
    }

    /// Sample-based estimation with CLT confidence intervals.
    ///
    /// The accumulator must have been fed a uniform (or proportionally
    /// stratified) random sample of `self.rows_seen` rows out of a
    /// population of `population_rows`. COUNT and SUM estimates are scaled
    /// up by the inverse sampling fraction; AVG/MIN/MAX are used directly.
    ///
    /// Margins are half-widths at the z-value `z`:
    /// - COUNT: normal approximation of the binomial,
    ///   `z · (N/n) · sqrt(n·p̂(1−p̂))` with `p̂ = c/n`.
    /// - SUM: `z · N · sqrt(var(y)/n)` where `y` is the per-row bin
    ///   contribution (0 outside the bin).
    /// - AVG: `z · sqrt(s²/c)` with the within-bin sample variance `s²`.
    /// - MIN/MAX: no distribution-free CI; margin 0 (reported as exact-ish
    ///   observations, mirroring typical AQP systems).
    pub fn finish_estimate(&self, population_rows: u64, z: f64) -> AggResult {
        let n = self.rows_seen.max(1) as f64;
        let npop = population_rows as f64;
        let scale = npop / n;
        let mut result = AggResult {
            bins: FxHashMap::default(),
            processed_fraction: (self.rows_seen as f64 / population_rows.max(1) as f64).min(1.0),
            exact: false,
        };
        for (key, acc) in &self.bins {
            let c = acc.count as f64;
            let mut values = Vec::with_capacity(self.aggs.len());
            let mut margins = Vec::with_capacity(self.aggs.len());
            for (i, (func, _)) in self.aggs.iter().enumerate() {
                match func {
                    AggFunc::Count => {
                        let p = (c / n).min(1.0);
                        values.push(c * scale);
                        margins.push(z * scale * (n * p * (1.0 - p)).sqrt());
                    }
                    AggFunc::Sum => {
                        let m = &acc.measures[i];
                        // y = measure inside bin, 0 outside: moments over all
                        // n sampled rows.
                        let mean_y = m.sum / n;
                        let var_y = (m.sumsq / n - mean_y * mean_y).max(0.0);
                        values.push(m.sum * scale);
                        margins.push(z * npop * (var_y / n).sqrt());
                    }
                    AggFunc::Avg => {
                        let m = &acc.measures[i];
                        let cnt = m.n.max(1) as f64;
                        values.push(m.sum / cnt);
                        margins.push(z * (m.sample_variance() / cnt).sqrt());
                    }
                    AggFunc::Min => {
                        let m = &acc.measures[i];
                        values.push(if m.n > 0 { m.min } else { 0.0 });
                        margins.push(0.0);
                    }
                    AggFunc::Max => {
                        let m = &acc.measures[i];
                        values.push(if m.n > 0 { m.max } else { 0.0 });
                        margins.push(0.0);
                    }
                }
            }
            result
                .bins
                .insert(key.clone(), BinStats::approximate(values, margins));
        }
        result
    }

    /// Merges another accumulator (same query) into this one.
    pub fn merge(&mut self, other: &GroupedAcc) {
        debug_assert_eq!(self.aggs, other.aggs);
        self.rows_seen += other.rows_seen;
        self.rows_matched += other.rows_matched;
        for (key, acc) in &other.bins {
            match self.bins.get_mut(key) {
                Some(mine) => {
                    mine.count += acc.count;
                    for (m, o) in mine.measures.iter_mut().zip(&acc.measures) {
                        m.merge(o);
                    }
                }
                None => {
                    self.bins.insert(key.clone(), acc.clone());
                }
            }
        }
    }
}

fn finish_value(func: AggFunc, acc: &BinAcc, idx: usize) -> f64 {
    match func {
        AggFunc::Count => acc.count as f64,
        AggFunc::Sum => acc.measures[idx].sum,
        AggFunc::Avg => {
            let m = &acc.measures[idx];
            if m.n == 0 {
                0.0
            } else {
                m.sum / m.n as f64
            }
        }
        AggFunc::Min => {
            let m = &acc.measures[idx];
            if m.n == 0 {
                0.0
            } else {
                m.min
            }
        }
        AggFunc::Max => {
            let m = &acc.measures[idx];
            if m.n == 0 {
                0.0
            } else {
                m.max
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idebench_core::spec::{AggregateSpec, BinDef};
    use idebench_core::{BinCoord, Query, VizSpec};
    use idebench_storage::{DataType, Dataset, TableBuilder};
    use std::sync::Arc;

    fn dataset() -> Dataset {
        let mut b = TableBuilder::with_fields(
            "flights",
            &[
                ("carrier", DataType::Nominal),
                ("dep_delay", DataType::Float),
            ],
        );
        for (c, d) in [
            ("AA", 10.0),
            ("AA", 20.0),
            ("DL", 30.0),
            ("DL", 50.0),
            ("AA", 0.0),
        ] {
            b.push_row(&[c.into(), d.into()]).unwrap();
        }
        Dataset::Denormalized(Arc::new(b.finish()))
    }

    fn query() -> Query {
        let spec = VizSpec::new(
            "v",
            "flights",
            vec![BinDef::Nominal {
                dimension: "carrier".into(),
            }],
            vec![
                AggregateSpec::count(),
                AggregateSpec::over(AggFunc::Avg, "dep_delay"),
                AggregateSpec::over(AggFunc::Sum, "dep_delay"),
                AggregateSpec::over(AggFunc::Min, "dep_delay"),
                AggregateSpec::over(AggFunc::Max, "dep_delay"),
            ],
        );
        Query::for_viz(&spec, None)
    }

    fn run_all(ds: &Dataset, q: &Query) -> GroupedAcc {
        let resolved = ResolvedQuery::new(ds, q).unwrap();
        let mut acc = GroupedAcc::for_query(&resolved, q.aggregates());
        for row in 0..resolved.num_rows {
            acc.process_row(&resolved, row);
        }
        acc
    }

    #[test]
    fn exact_aggregates_per_bin() {
        let ds = dataset();
        let q = query();
        let acc = run_all(&ds, &q);
        let result = acc.finish_exact();
        assert!(result.exact);
        let aa = BinKey::d1(BinCoord::Cat(0));
        let dl = BinKey::d1(BinCoord::Cat(1));
        let aa_stats = &result.bins[&aa];
        assert_eq!(aa_stats.values[0], 3.0); // count
        assert_eq!(aa_stats.values[1], 10.0); // avg
        assert_eq!(aa_stats.values[2], 30.0); // sum
        assert_eq!(aa_stats.values[3], 0.0); // min
        assert_eq!(aa_stats.values[4], 20.0); // max
        assert_eq!(result.bins[&dl].values[1], 40.0);
    }

    #[test]
    fn rows_seen_and_matched_track_scan() {
        let ds = dataset();
        let q = query();
        let acc = run_all(&ds, &q);
        assert_eq!(acc.rows_seen, 5);
        assert_eq!(acc.rows_matched, 5);
    }

    #[test]
    fn estimate_scales_counts_and_sums() {
        let ds = dataset();
        let q = query();
        let acc = run_all(&ds, &q);
        // Pretend the 5 rows are a 10% sample of 50 rows.
        let est = acc.finish_estimate(50, 1.96);
        assert!(!est.exact);
        assert!((est.processed_fraction - 0.1).abs() < 1e-12);
        let aa = BinKey::d1(BinCoord::Cat(0));
        let s = &est.bins[&aa];
        assert_eq!(s.values[0], 30.0); // count 3 / 0.1
        assert_eq!(s.values[1], 10.0); // avg unscaled
        assert_eq!(s.values[2], 300.0); // sum scaled
        assert!(s.margins[0] > 0.0);
        assert!(s.margins[2] > 0.0);
        assert_eq!(s.margins[3], 0.0); // min has no CI
    }

    #[test]
    fn count_margin_formula() {
        let ds = dataset();
        let q = query();
        let acc = run_all(&ds, &q);
        let est = acc.finish_estimate(50, 2.0);
        let aa = BinKey::d1(BinCoord::Cat(0));
        // p̂ = 3/5, margin = z*(N/n)*sqrt(n p (1-p)) = 2*10*sqrt(5*0.6*0.4)
        let expect = 2.0 * 10.0 * (5.0 * 0.6 * 0.4f64).sqrt();
        assert!((est.bins[&aa].margins[0] - expect).abs() < 1e-9);
    }

    #[test]
    fn avg_margin_uses_within_bin_variance() {
        let ds = dataset();
        let q = query();
        let acc = run_all(&ds, &q);
        let est = acc.finish_estimate(50, 2.0);
        let dl = BinKey::d1(BinCoord::Cat(1));
        // DL values: 30, 50 → s² = 200, margin = 2*sqrt(200/2) = 20.
        assert!((est.bins[&dl].margins[1] - 20.0).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_single_pass() {
        let ds = dataset();
        let q = query();
        let resolved = ResolvedQuery::new(&ds, &q).unwrap();
        let mut a = GroupedAcc::for_query(&resolved, q.aggregates());
        let mut b = GroupedAcc::for_query(&resolved, q.aggregates());
        for row in 0..3 {
            a.process_row(&resolved, row);
        }
        for row in 3..5 {
            b.process_row(&resolved, row);
        }
        a.merge(&b);
        let full = run_all(&ds, &q);
        assert_eq!(a.finish_exact(), full.finish_exact());
        assert_eq!(a.rows_seen, 5);
    }

    #[test]
    fn filtered_rows_do_not_accumulate() {
        let ds = dataset();
        let spec = VizSpec::new(
            "v",
            "flights",
            vec![BinDef::Nominal {
                dimension: "carrier".into(),
            }],
            vec![AggregateSpec::count()],
        );
        let q = Query::for_viz(
            &spec,
            Some(idebench_core::FilterExpr::Pred(
                idebench_core::Predicate::Range {
                    column: "dep_delay".into(),
                    min: 25.0,
                    max: 100.0,
                },
            )),
        );
        let acc = run_all(&ds, &q);
        assert_eq!(acc.rows_matched, 2);
        let result = acc.finish_exact();
        assert_eq!(result.bins.len(), 1); // only DL bins survive
    }

    #[test]
    fn sample_variance_edges() {
        let mut m = MeasureAcc::new();
        assert_eq!(m.sample_variance(), 0.0);
        m.update(5.0);
        assert_eq!(m.sample_variance(), 0.0);
        m.update(7.0);
        assert!((m.sample_variance() - 2.0).abs() < 1e-12);
    }
}
