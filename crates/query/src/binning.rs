//! Compiled binning: mapping rows to bin keys.

use crate::resolve::ResolvedColumn;
use idebench_core::{BinCoord, BinDef, BinKey, CoreError};
use idebench_storage::{Dataset, Table};

/// One compiled binning dimension.
enum CompiledDim<'a> {
    Nominal(ResolvedColumn<'a>),
    Width {
        col: ResolvedColumn<'a>,
        width: f64,
        anchor: f64,
    },
}

impl CompiledDim<'_> {
    #[inline]
    fn coord_of(&self, row: usize) -> Option<BinCoord> {
        match self {
            CompiledDim::Nominal(col) => col.code_at(row).map(BinCoord::Cat),
            CompiledDim::Width { col, width, anchor } => {
                let v = col.numeric_at(row)?;
                Some(BinCoord::Bucket(((v - anchor) / width).floor() as i64))
            }
        }
    }

    fn is_joined(&self) -> bool {
        match self {
            CompiledDim::Nominal(c) => c.is_joined(),
            CompiledDim::Width { col, .. } => col.is_joined(),
        }
    }
}

/// Compiled 1D/2D binning for a query.
pub struct CompiledBinning<'a> {
    dims: Vec<CompiledDim<'a>>,
}

impl<'a> CompiledBinning<'a> {
    /// Compiles binning definitions against a dataset.
    ///
    /// [`BinDef::Count`] must have been resolved to `Width` by the driver
    /// beforehand (it needs a data min/max pass); encountering one here is
    /// an error.
    pub fn compile(dataset: &'a Dataset, defs: &[BinDef]) -> Result<Self, CoreError> {
        Self::compile_with(defs, &mut |name| ResolvedColumn::new(dataset, name))
    }

    /// Compiles against a bare table (sample tables).
    pub fn compile_on_table(table: &'a Table, defs: &[BinDef]) -> Result<Self, CoreError> {
        Self::compile_with(defs, &mut |name| ResolvedColumn::on_table(table, name))
    }

    fn compile_with(
        defs: &[BinDef],
        resolve: &mut dyn FnMut(&str) -> Result<ResolvedColumn<'a>, CoreError>,
    ) -> Result<Self, CoreError> {
        let dims = defs
            .iter()
            .map(|def| {
                Ok(match def {
                    BinDef::Nominal { dimension } => {
                        let col = resolve(dimension)?;
                        if col.column().as_nominal().is_none() {
                            return Err(CoreError::Storage(format!(
                                "nominal binning on non-nominal column {dimension}"
                            )));
                        }
                        CompiledDim::Nominal(col)
                    }
                    BinDef::Width {
                        dimension,
                        width,
                        anchor,
                    } => {
                        if !(width.is_finite() && *width > 0.0) {
                            return Err(CoreError::Storage(format!(
                                "non-positive bin width {width} on {dimension}"
                            )));
                        }
                        CompiledDim::Width {
                            col: resolve(dimension)?,
                            width: *width,
                            anchor: *anchor,
                        }
                    }
                    BinDef::Count { dimension, .. } => {
                        return Err(CoreError::Storage(format!(
                            "unresolved count binning on {dimension} (driver resolves these)"
                        )))
                    }
                })
            })
            .collect::<Result<Vec<_>, CoreError>>()?;
        Ok(CompiledBinning { dims })
    }

    /// The bin key for a row; `None` when any binned value is null.
    #[inline]
    pub fn bin_of(&self, row: usize) -> Option<BinKey> {
        match self.dims.len() {
            1 => Some(BinKey::d1(self.dims[0].coord_of(row)?)),
            2 => Some(BinKey::d2(
                self.dims[0].coord_of(row)?,
                self.dims[1].coord_of(row)?,
            )),
            n => {
                debug_assert!(false, "unsupported binning arity {n}");
                None
            }
        }
    }

    /// Number of binning dimensions.
    pub fn arity(&self) -> usize {
        self.dims.len()
    }

    /// Join-accessed binning columns (cost model input).
    pub fn joined_columns(&self) -> usize {
        self.dims.iter().filter(|d| d.is_joined()).count()
    }

    /// Total scan width of the binning columns in 4-byte units.
    pub fn width_units(&self) -> f64 {
        self.dims
            .iter()
            .map(|d| match d {
                CompiledDim::Nominal(c) => c.width_units(),
                CompiledDim::Width { col, .. } => col.width_units(),
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idebench_storage::{DataType, TableBuilder, Value};
    use std::sync::Arc;

    fn dataset() -> Dataset {
        let mut b = TableBuilder::with_fields(
            "flights",
            &[
                ("carrier", DataType::Nominal),
                ("dep_delay", DataType::Float),
            ],
        );
        for (c, d) in [("AA", 5.0), ("DL", 15.0), ("AA", -7.0)] {
            b.push_row(&[c.into(), d.into()]).unwrap();
        }
        Dataset::Denormalized(Arc::new(b.finish()))
    }

    #[test]
    fn nominal_bins_are_codes() {
        let ds = dataset();
        let b = CompiledBinning::compile(
            &ds,
            &[BinDef::Nominal {
                dimension: "carrier".into(),
            }],
        )
        .unwrap();
        assert_eq!(b.bin_of(0), Some(BinKey::d1(BinCoord::Cat(0))));
        assert_eq!(b.bin_of(1), Some(BinKey::d1(BinCoord::Cat(1))));
        assert_eq!(b.arity(), 1);
    }

    #[test]
    fn width_bins_floor_including_negatives() {
        let ds = dataset();
        let b = CompiledBinning::compile(
            &ds,
            &[BinDef::Width {
                dimension: "dep_delay".into(),
                width: 10.0,
                anchor: 0.0,
            }],
        )
        .unwrap();
        assert_eq!(b.bin_of(0), Some(BinKey::d1(BinCoord::Bucket(0)))); // 5.0
        assert_eq!(b.bin_of(1), Some(BinKey::d1(BinCoord::Bucket(1)))); // 15.0
        assert_eq!(b.bin_of(2), Some(BinKey::d1(BinCoord::Bucket(-1)))); // -7.0
    }

    #[test]
    fn anchor_shifts_bins() {
        let ds = dataset();
        let b = CompiledBinning::compile(
            &ds,
            &[BinDef::Width {
                dimension: "dep_delay".into(),
                width: 10.0,
                anchor: 5.0,
            }],
        )
        .unwrap();
        assert_eq!(b.bin_of(0), Some(BinKey::d1(BinCoord::Bucket(0)))); // 5.0 → [5,15)
        assert_eq!(b.bin_of(2), Some(BinKey::d1(BinCoord::Bucket(-2)))); // -7 → [-15,-5)
    }

    #[test]
    fn two_dimensional_keys() {
        let ds = dataset();
        let b = CompiledBinning::compile(
            &ds,
            &[
                BinDef::Nominal {
                    dimension: "carrier".into(),
                },
                BinDef::Width {
                    dimension: "dep_delay".into(),
                    width: 10.0,
                    anchor: 0.0,
                },
            ],
        )
        .unwrap();
        assert_eq!(
            b.bin_of(1),
            Some(BinKey::d2(BinCoord::Cat(1), BinCoord::Bucket(1)))
        );
        assert_eq!(b.arity(), 2);
    }

    #[test]
    fn null_values_produce_no_bin() {
        let mut t = TableBuilder::with_fields("t", &[("x", DataType::Float)]);
        t.push_row(&[Value::Null]).unwrap();
        let ds = Dataset::Denormalized(Arc::new(t.finish()));
        let b = CompiledBinning::compile(
            &ds,
            &[BinDef::Width {
                dimension: "x".into(),
                width: 1.0,
                anchor: 0.0,
            }],
        )
        .unwrap();
        assert_eq!(b.bin_of(0), None);
    }

    #[test]
    fn invalid_definitions_rejected() {
        let ds = dataset();
        assert!(CompiledBinning::compile(
            &ds,
            &[BinDef::Nominal {
                dimension: "dep_delay".into()
            }]
        )
        .is_err());
        assert!(CompiledBinning::compile(
            &ds,
            &[BinDef::Width {
                dimension: "dep_delay".into(),
                width: 0.0,
                anchor: 0.0
            }]
        )
        .is_err());
        assert!(CompiledBinning::compile(
            &ds,
            &[BinDef::Count {
                dimension: "dep_delay".into(),
                bins: 10
            }]
        )
        .is_err());
    }
}
