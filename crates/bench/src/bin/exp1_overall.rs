//! **Experiment 1 (paper §5.2, Figure 5 + Figures 6a–c).**
//!
//! Runs the mixed workload (10 workflows) against the four main systems for
//! each of the five default time requirements on the M-scale de-normalized
//! dataset, then prints:
//!
//! - the Figure-5 summary block per system/TR (% TR violations, mean
//!   missing bins, median MRE, area above the truncated MRE CDF),
//! - the Figure-6a series (TR-violation ratio vs TR),
//! - the Figure-6b series (median of mean relative margins vs TR),
//! - the Figure-6c series (mean cosine distance vs TR).

use idebench_bench::{print_summary, ExpArgs, ExpContext, MAIN_SYSTEMS};
use idebench_core::{DetailedReport, Settings, SummaryReport};
use idebench_workflow::WorkflowType;

fn main() {
    let args = ExpArgs::parse();
    println!(
        "exp1: mixed workload, {} rows, systems {MAIN_SYSTEMS:?}",
        args.rows('M')
    );
    eprintln!("precomputing ground truth on all cores...");
    let mut ctx = ExpContext::standard(args, 'M', WorkflowType::Mixed, 10, 18);

    let mut all = Vec::new();
    for tr in Settings::DEFAULT_TIME_REQUIREMENTS_MS {
        for system in MAIN_SYSTEMS {
            let settings = ctx
                .args
                .settings()
                .with_time_requirement_ms(tr)
                .with_think_time_ms(1_000); // stress-test think time (§5.1)
            let report = ctx
                .run_system(system, &settings)
                .unwrap_or_else(|e| panic!("{system} @ TR={tr}: {e}"));
            eprintln!("  done: {system} TR={tr}ms ({} queries)", report.rows.len());
            all.push(report);
        }
    }
    let merged = DetailedReport::merged(all);
    let summary = SummaryReport::from_detailed(&merged);
    print_summary(
        "Figure 5: summary report (mixed workload, size M)",
        &summary,
    );

    // Figure 6a/6b/6c series per system.
    println!("\n=== Figures 6a-6c: series over time requirements ===");
    println!(
        "{:<14} {:>8} {:>12} {:>12} {:>12}",
        "system", "TR(ms)", "%TR_violated", "med_margin", "cosine"
    );
    for system in MAIN_SYSTEMS {
        for tr in Settings::DEFAULT_TIME_REQUIREMENTS_MS {
            let row = summary
                .rows
                .iter()
                .find(|r| r.system == system && r.time_req == tr)
                .expect("cell exists");
            println!(
                "{:<14} {:>8} {:>12.1} {:>12} {:>12}",
                system,
                tr,
                row.pct_tr_violated,
                row.median_margin.map_or("-".into(), |v| format!("{v:.3}")),
                row.mean_cosine.map_or("-".into(), |v| format!("{v:.3}")),
            );
        }
    }

    // The Figure-5 CDFs, as machine-readable series.
    let mut cdfs = serde_json::Map::new();
    for system in MAIN_SYSTEMS {
        for tr in Settings::DEFAULT_TIME_REQUIREMENTS_MS {
            let cdf = SummaryReport::mre_cdf(&merged, system, tr);
            cdfs.insert(
                format!("{system}@{tr}"),
                serde_json::to_value(&cdf).expect("cdf serializes"),
            );
        }
    }
    ctx.args.write_json("exp1_summary.json", &summary);
    ctx.args
        .write_json("exp1_mre_cdfs.json", &serde_json::Value::Object(cdfs));
    let (hits, misses) = ctx.gt.stats();
    eprintln!("ground-truth cache: {hits} hits / {misses} misses");
}
