//! String dictionaries for nominal (categorical) columns.

use rustc_hash::FxHashMap;

/// A bidirectional mapping between category strings and dense `u32` codes.
///
/// Codes are assigned in first-seen order starting at 0, so a dictionary with
/// `n` entries uses exactly the codes `0..n`. Nominal columns store only the
/// codes; the dictionary is shared (via `Arc`) between a column and any
/// derived tables (samples, filtered clones), so code spaces stay aligned
/// across an engine's auxiliary structures.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    values: Vec<String>,
    index: FxHashMap<String, u32>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a dictionary from a list of distinct values, coded in order.
    pub fn from_values<I, S>(values: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut d = Dictionary::new();
        for v in values {
            d.intern(&v.into());
        }
        d
    }

    /// Returns the code for `value`, inserting it if unseen.
    pub fn intern(&mut self, value: &str) -> u32 {
        if let Some(&code) = self.index.get(value) {
            return code;
        }
        let code = u32::try_from(self.values.len()).expect("dictionary overflow");
        self.values.push(value.to_string());
        self.index.insert(value.to_string(), code);
        code
    }

    /// Returns the code for `value` if it has been interned.
    pub fn code(&self, value: &str) -> Option<u32> {
        self.index.get(value).copied()
    }

    /// Returns the string for `code`, if in range.
    pub fn value(&self, code: u32) -> Option<&str> {
        self.values.get(code as usize).map(String::as_str)
    }

    /// Number of distinct values (cardinality of the category domain).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no value has been interned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// All values in code order.
    pub fn values(&self) -> &[String] {
        &self.values
    }
}

impl PartialEq for Dictionary {
    fn eq(&self, other: &Self) -> bool {
        self.values == other.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_assigns_dense_codes() {
        let mut d = Dictionary::new();
        assert_eq!(d.intern("AA"), 0);
        assert_eq!(d.intern("DL"), 1);
        assert_eq!(d.intern("AA"), 0);
        assert_eq!(d.intern("UA"), 2);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn code_and_value_are_inverse() {
        let d = Dictionary::from_values(["AA", "DL", "UA"]);
        for (i, v) in ["AA", "DL", "UA"].iter().enumerate() {
            assert_eq!(d.code(v), Some(i as u32));
            assert_eq!(d.value(i as u32), Some(*v));
        }
        assert_eq!(d.code("WN"), None);
        assert_eq!(d.value(99), None);
    }

    #[test]
    fn from_values_dedups() {
        let d = Dictionary::from_values(["x", "y", "x"]);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn equality_ignores_index_layout() {
        let a = Dictionary::from_values(["p", "q"]);
        let mut b = Dictionary::new();
        b.intern("p");
        b.intern("q");
        assert_eq!(a, b);
    }
}
