//! Typed columns with optional null bitmaps.

use crate::dictionary::Dictionary;
use crate::selection::SelVec;
use std::sync::Arc;

/// The physical payload of a column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// Quantitative 64-bit floats.
    Float(Vec<f64>),
    /// Integer keys / discrete values.
    Int(Vec<i64>),
    /// Dictionary codes into the shared [`Dictionary`].
    Nominal(Vec<u32>, Arc<Dictionary>),
}

/// A borrowed, typed view of a column's payload (see [`Column::typed`]).
#[derive(Debug, Clone, Copy)]
pub enum ColumnSlice<'a> {
    /// Float payload.
    F64(&'a [f64]),
    /// Integer payload.
    I64(&'a [i64]),
    /// Dictionary codes plus their dictionary.
    Codes(&'a [u32], &'a Arc<Dictionary>),
}

/// A column: data plus an optional validity bitmap.
///
/// `validity == None` means every row is valid (the common case for the
/// flights dataset); otherwise a row is null when its bit is *unset*.
///
/// Columns also lazily cache numeric min/max statistics (see
/// [`Column::numeric_min_max`]), which query planning uses to bound the
/// bucket space of fixed-width binnings.
#[derive(Debug, Clone)]
pub struct Column {
    data: ColumnData,
    validity: Option<SelVec>,
    /// Lazily-computed numeric (min, max) over valid rows; `None` inside
    /// the cell when the column is empty, all-null, or contains non-finite
    /// values.
    stats: std::sync::OnceLock<Option<(f64, f64)>>,
}

impl PartialEq for Column {
    fn eq(&self, other: &Self) -> bool {
        // Stats are derived data; equality is payload + validity only.
        self.data == other.data && self.validity == other.validity
    }
}

impl Column {
    /// A fully-valid float column.
    pub fn float(values: Vec<f64>) -> Self {
        Column {
            data: ColumnData::Float(values),
            validity: None,
            stats: std::sync::OnceLock::new(),
        }
    }

    /// A fully-valid integer column.
    pub fn int(values: Vec<i64>) -> Self {
        Column {
            data: ColumnData::Int(values),
            validity: None,
            stats: std::sync::OnceLock::new(),
        }
    }

    /// A fully-valid nominal column over a shared dictionary.
    pub fn nominal(codes: Vec<u32>, dict: Arc<Dictionary>) -> Self {
        debug_assert!(codes.iter().all(|&c| (c as usize) < dict.len().max(1)));
        Column {
            data: ColumnData::Nominal(codes, dict),
            validity: None,
            stats: std::sync::OnceLock::new(),
        }
    }

    /// Attaches a validity bitmap (bit unset ⇒ null). Panics on length mismatch.
    pub fn with_validity(mut self, validity: SelVec) -> Self {
        assert_eq!(validity.len(), self.len(), "validity length mismatch");
        self.validity = Some(validity);
        self.stats = std::sync::OnceLock::new(); // validity changes the stats
        self
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match &self.data {
            ColumnData::Float(v) => v.len(),
            ColumnData::Int(v) => v.len(),
            ColumnData::Nominal(v, _) => v.len(),
        }
    }

    /// True when the column has zero rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The raw payload.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// The validity bitmap, if any row may be null.
    pub fn validity(&self) -> Option<&SelVec> {
        self.validity.as_ref()
    }

    /// Whether row `i` is valid (non-null).
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        self.validity.as_ref().is_none_or(|v| v.contains(i))
    }

    /// Float slice view; `None` for non-float columns.
    pub fn as_float(&self) -> Option<&[f64]> {
        match &self.data {
            ColumnData::Float(v) => Some(v),
            _ => None,
        }
    }

    /// Integer slice view; `None` for non-int columns.
    pub fn as_int(&self) -> Option<&[i64]> {
        match &self.data {
            ColumnData::Int(v) => Some(v),
            _ => None,
        }
    }

    /// Nominal code slice + dictionary; `None` for non-nominal columns.
    pub fn as_nominal(&self) -> Option<(&[u32], &Arc<Dictionary>)> {
        match &self.data {
            ColumnData::Nominal(v, d) => Some((v, d)),
            _ => None,
        }
    }

    /// Row `i` as an `f64`, for quantitative evaluation.
    ///
    /// Ints are widened; nominal codes are returned as their code value
    /// (useful only for internal bucketing). Returns `None` for null rows.
    #[inline]
    pub fn numeric_at(&self, i: usize) -> Option<f64> {
        if !self.is_valid(i) {
            return None;
        }
        Some(match &self.data {
            ColumnData::Float(v) => v[i],
            ColumnData::Int(v) => v[i] as f64,
            ColumnData::Nominal(v, _) => f64::from(v[i]),
        })
    }

    /// The column as a typed slice view plus validity, for batch kernels.
    ///
    /// This is the accessor vectorized execution builds on: one `match` per
    /// column per morsel instead of one per row.
    #[inline]
    pub fn typed(&self) -> ColumnSlice<'_> {
        match &self.data {
            ColumnData::Float(v) => ColumnSlice::F64(v),
            ColumnData::Int(v) => ColumnSlice::I64(v),
            ColumnData::Nominal(v, d) => ColumnSlice::Codes(v, d),
        }
    }

    /// Numeric `(min, max)` over the column's valid rows, computed once and
    /// cached (ints widened, nominal codes taken as their code value).
    ///
    /// Returns `None` when the column is empty, every row is null, or any
    /// valid value is non-finite — callers use the bounds to size dense
    /// bucket spaces, and a NaN/∞ row would make arithmetic slotting
    /// disagree with the hashed reference path.
    pub fn numeric_min_max(&self) -> Option<(f64, f64)> {
        *self.stats.get_or_init(|| {
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            let mut seen = false;
            for i in 0..self.len() {
                let Some(v) = self.numeric_at(i) else {
                    continue;
                };
                if !v.is_finite() {
                    return None;
                }
                min = min.min(v);
                max = max.max(v);
                seen = true;
            }
            seen.then_some((min, max))
        })
    }

    /// In-memory footprint in bytes: payload plus the validity bitmap's
    /// backing words. The star-schema join cache accounts materialized
    /// columns with this when charging its byte budget.
    pub fn byte_size(&self) -> usize {
        let payload = match &self.data {
            ColumnData::Float(v) => v.len() * 8,
            ColumnData::Int(v) => v.len() * 8,
            ColumnData::Nominal(v, _) => v.len() * 4,
        };
        payload
            + self
                .validity
                .as_ref()
                .map_or(0, |v| v.len().div_ceil(64) * 8)
    }

    /// Materializes the subset of rows in `rows`, preserving order.
    pub fn take(&self, rows: &[usize]) -> Column {
        let data = match &self.data {
            ColumnData::Float(v) => ColumnData::Float(rows.iter().map(|&i| v[i]).collect()),
            ColumnData::Int(v) => ColumnData::Int(rows.iter().map(|&i| v[i]).collect()),
            ColumnData::Nominal(v, d) => {
                ColumnData::Nominal(rows.iter().map(|&i| v[i]).collect(), Arc::clone(d))
            }
        };
        let validity = self
            .validity
            .as_ref()
            .map(|val| SelVec::from_bools(rows.len(), rows.iter().map(|&i| val.contains(i))));
        Column {
            data,
            validity,
            stats: std::sync::OnceLock::new(),
        }
    }

    /// Materializes the rows selected by `sel` (ascending order).
    pub fn filter(&self, sel: &SelVec) -> Column {
        let rows: Vec<usize> = sel.iter().collect();
        self.take(&rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dict() -> Arc<Dictionary> {
        Arc::new(Dictionary::from_values(["AA", "DL", "UA"]))
    }

    #[test]
    fn float_column_basics() {
        let c = Column::float(vec![1.0, 2.5, -3.0]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.as_float().unwrap()[1], 2.5);
        assert!(c.as_int().is_none());
        assert_eq!(c.numeric_at(2), Some(-3.0));
    }

    #[test]
    fn nominal_column_roundtrip() {
        let c = Column::nominal(vec![0, 2, 1, 0], dict());
        let (codes, d) = c.as_nominal().unwrap();
        assert_eq!(codes, &[0, 2, 1, 0]);
        assert_eq!(d.value(2), Some("UA"));
    }

    #[test]
    fn validity_masks_nulls() {
        let v = SelVec::from_bools(3, [true, false, true]);
        let c = Column::float(vec![1.0, 2.0, 3.0]).with_validity(v);
        assert!(c.is_valid(0));
        assert!(!c.is_valid(1));
        assert_eq!(c.numeric_at(1), None);
        assert_eq!(c.numeric_at(2), Some(3.0));
    }

    #[test]
    fn take_reorders_and_keeps_validity() {
        let v = SelVec::from_bools(4, [true, false, true, true]);
        let c = Column::int(vec![10, 20, 30, 40]).with_validity(v);
        let t = c.take(&[3, 1, 0]);
        assert_eq!(t.as_int().unwrap(), &[40, 20, 10]);
        assert!(t.is_valid(0));
        assert!(!t.is_valid(1));
        assert!(t.is_valid(2));
    }

    #[test]
    fn filter_takes_selected_rows() {
        let c = Column::float(vec![0.0, 1.0, 2.0, 3.0, 4.0]);
        let mut sel = SelVec::none(5);
        sel.insert(1);
        sel.insert(4);
        let f = c.filter(&sel);
        assert_eq!(f.as_float().unwrap(), &[1.0, 4.0]);
    }

    #[test]
    fn int_widens_to_f64() {
        let c = Column::int(vec![7]);
        assert_eq!(c.numeric_at(0), Some(7.0));
    }

    #[test]
    fn min_max_stats_cached_per_type() {
        assert_eq!(
            Column::float(vec![3.5, -1.0, 9.25]).numeric_min_max(),
            Some((-1.0, 9.25))
        );
        assert_eq!(
            Column::int(vec![4, -2, 10]).numeric_min_max(),
            Some((-2.0, 10.0))
        );
        assert_eq!(
            Column::nominal(vec![0, 2, 1], dict()).numeric_min_max(),
            Some((0.0, 2.0))
        );
        assert_eq!(Column::float(vec![]).numeric_min_max(), None);
    }

    #[test]
    fn min_max_skips_nulls_and_rejects_non_finite() {
        let v = SelVec::from_bools(3, [false, true, true]);
        let c = Column::float(vec![-999.0, 2.0, 5.0]).with_validity(v);
        assert_eq!(c.numeric_min_max(), Some((2.0, 5.0)));

        let all_null = Column::float(vec![1.0]).with_validity(SelVec::from_bools(1, [false]));
        assert_eq!(all_null.numeric_min_max(), None);

        assert_eq!(Column::float(vec![1.0, f64::NAN]).numeric_min_max(), None);
        assert_eq!(Column::float(vec![f64::INFINITY]).numeric_min_max(), None);

        // A null non-finite value does not poison the stats.
        let v = SelVec::from_bools(2, [true, false]);
        let c = Column::float(vec![1.0, f64::NAN]).with_validity(v);
        assert_eq!(c.numeric_min_max(), Some((1.0, 1.0)));
    }
}
