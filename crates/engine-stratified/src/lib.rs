//! The System-X-class AQP engine: **offline stratified sampling**.
//!
//! Models the paper's commercial "System X" (§5): an in-memory approximate
//! engine that answers queries from *stratified sample tables built
//! offline*. Observable behaviour reproduced here:
//!
//! - Queries run **blocking over the sample**: fast, but nothing can be
//!   fetched before the sample scan finishes — so the smallest time
//!   requirements are violated (the paper saw >50% violations at 0.5 s,
//!   5% at 1 s, none from 3 s up).
//! - Because the sample is fixed offline, **quality metrics are constant
//!   across time requirements** (§6): more time does not buy better answers
//!   without building bigger samples — which would raise the (already
//!   significant) data-preparation time.
//! - Stratification guarantees rare strata are represented, keeping missing
//!   bins low even at small sampling rates.
//! - The paper's System X "only works on de-normalized data"; this
//!   reproduction goes further — star schemas sample *fact rows* (strata
//!   attributes read fact-ordered through the schema's shared join cache)
//!   and keep the sampled fact joined to the original dimensions, so the
//!   sample picks exactly the rows the de-normalized twin would (see
//!   [`build_stratified_sample_dataset`]).
//!
//! The sample uses proportional allocation with a per-stratum minimum of one
//! row, so uniform scale-up estimators apply (weights are equal across
//! strata up to rounding); see `DESIGN.md` for the simplification note.

use idebench_core::{
    CoreError, PrepStats, Query, QueryHandle, Settings, StepStatus, SystemAdapter,
};
use idebench_query::{ChunkedRun, CompiledPlan, SnapshotMode};
use idebench_storage::{Dataset, StarSchema, Table};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rustc_hash::FxHashMap;
use std::sync::Arc;

/// Configuration of the stratified-sampling engine.
#[derive(Debug, Clone, PartialEq)]
pub struct StratifiedConfig {
    /// Fraction of rows kept in the offline sample (paper used 1% of 500M;
    /// scaled-down datasets default to 10% so samples aren't degenerate).
    pub sampling_rate: f64,
    /// Columns defining the strata. Nominal columns only; columns missing
    /// from a dataset are ignored (falls back to coarser strata).
    pub strata_columns: Vec<String>,
    /// Base per-row cost of scanning the sample.
    pub cost_base: f64,
    /// Additional cost per 4-byte unit of referenced column width.
    pub cost_per_width_unit: f64,
    /// Extra cost per filter-matching sample row (weighted-estimate
    /// maintenance).
    pub match_cost: f64,
    /// Fixed planning/connection overhead per query, in (virtual) seconds;
    /// converted to work units at prepare time.
    pub per_query_overhead_s: f64,
    /// Load cost per row (CSV ingest, like the exact engine).
    pub load_units_per_row: f64,
    /// Offline sample-construction cost per *source* row (the scan).
    pub preprocess_units_per_row: f64,
    /// Offline sample-construction cost per *sample* row (the write) —
    /// the term that makes bigger samples costlier to prepare (paper §6).
    pub preprocess_units_per_sample_row: f64,
}

impl Default for StratifiedConfig {
    fn default() -> Self {
        StratifiedConfig {
            sampling_rate: 0.10,
            strata_columns: vec!["carrier".into(), "origin_state".into()],
            cost_base: 0.14,
            cost_per_width_unit: 0.08,
            match_cost: 0.65,
            per_query_overhead_s: 0.06,
            load_units_per_row: 1.0,
            preprocess_units_per_row: 0.35,
            preprocess_units_per_sample_row: 2.0,
        }
    }
}

impl StratifiedConfig {
    /// Per-row work-unit cost over the sample.
    pub fn row_cost(&self, plan: &CompiledPlan) -> f64 {
        self.cost_base + self.cost_per_width_unit * plan.width_units()
    }
}

/// The offline-sampling adapter ("stratified" in reports).
pub struct StratifiedAdapter {
    config: StratifiedConfig,
    source: Option<Dataset>,
    sample: Option<Dataset>,
    population: u64,
    z: f64,
    overhead_units: u64,
    prep: PrepStats,
    /// Scan worker-pool size, taken from the settings at prepare time.
    workers: usize,
}

impl StratifiedAdapter {
    /// Creates the adapter with a custom configuration.
    pub fn new(config: StratifiedConfig) -> Self {
        assert!(
            config.sampling_rate > 0.0 && config.sampling_rate <= 1.0,
            "sampling rate must be in (0, 1]"
        );
        StratifiedAdapter {
            config,
            source: None,
            sample: None,
            population: 0,
            z: 1.96,
            overhead_units: 0,
            prep: PrepStats::default(),
            workers: 1,
        }
    }

    /// Creates the adapter with default calibration.
    pub fn with_defaults() -> Self {
        Self::new(StratifiedConfig::default())
    }

    /// The active configuration.
    pub fn config(&self) -> &StratifiedConfig {
        &self.config
    }

    /// Rows in the offline sample (after prepare).
    pub fn sample_rows(&self) -> usize {
        self.sample.as_ref().map_or(0, Dataset::fact_rows)
    }

    /// Hosts this adapter as a shared [`idebench_core::EngineService`]:
    /// one engine instance serves every session, so the offline stratified
    /// sample is built once and shared fleet-wide (submission is stateless
    /// across sessions).
    pub fn into_service(self) -> idebench_core::ServiceCore {
        idebench_core::ServiceCore::shared_adapter(self)
    }
}

/// One strata column: per-row dictionary codes plus a code-indexed table
/// of *value* hashes. Keying strata on value hashes (not raw codes) makes
/// the row choice independent of how a dictionary happens to assign codes,
/// so a star schema whose dimension table permutes the code order still
/// samples exactly the rows its de-normalized twin would.
struct StrataCol<'a> {
    codes: &'a [u32],
    value_keys: Vec<u64>,
}

/// FxHash of every dictionary value, indexed by code.
fn dictionary_value_keys(dict: &idebench_storage::Dictionary) -> Vec<u64> {
    use std::hash::{Hash, Hasher};
    (0..dict.len() as u32)
        .map(|code| {
            let mut h = rustc_hash::FxHasher::default();
            dict.value(code).unwrap_or("").hash(&mut h);
            h.finish()
        })
        .collect()
}

/// Selects the sampled row indexes: proportional allocation over the
/// strata keyed by the given columns' *values*, minimum one row per
/// stratum, seeded row choice within each stratum.
fn choose_stratified_rows(
    num_rows: usize,
    strata_cols: &[StrataCol<'_>],
    rate: f64,
    seed: u64,
) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5177_a7e5);
    let mut strata: FxHashMap<u64, Vec<usize>> = FxHashMap::default();
    for row in 0..num_rows {
        let mut key = 0u64;
        for col in strata_cols {
            key = key
                .wrapping_mul(1_000_003)
                .wrapping_add(col.value_keys[col.codes[row] as usize]);
        }
        strata.entry(key).or_default().push(row);
    }

    let mut chosen: Vec<usize> = Vec::with_capacity((num_rows as f64 * rate) as usize + 1);
    let mut keys: Vec<u64> = strata.keys().copied().collect();
    keys.sort_unstable(); // deterministic stratum order
    for key in keys {
        let rows = &mut strata.get_mut(&key).expect("key from map");
        let take = ((rows.len() as f64 * rate).round() as usize).clamp(1, rows.len());
        rows.shuffle(&mut rng);
        chosen.extend_from_slice(&rows[..take]);
    }
    chosen.sort_unstable();
    chosen
}

/// Builds a stratified sample of `table`: proportional allocation over the
/// strata defined by `strata_columns` (ignored when absent), minimum one
/// row per stratum, seeded row choice within each stratum.
pub fn build_stratified_sample(
    table: &Table,
    strata_columns: &[String],
    rate: f64,
    seed: u64,
) -> Table {
    // Gather code accessors for present nominal strata columns.
    let strata_cols: Vec<StrataCol<'_>> = strata_columns
        .iter()
        .filter_map(|name| table.column(name).ok())
        .filter_map(|c| {
            c.as_nominal().map(|(codes, dict)| StrataCol {
                codes,
                value_keys: dictionary_value_keys(dict),
            })
        })
        .collect();
    let chosen = choose_stratified_rows(table.num_rows(), &strata_cols, rate, seed);
    table
        .take(&chosen)
        .renamed(format!("{}_sample", table.name()))
}

/// A strata code column resolved against a dataset: borrowed from the fact
/// table, shared from the star schema's join cache, or gathered once.
enum StrataCodes<'a> {
    Borrowed(&'a [u32]),
    Shared(Arc<idebench_storage::Column>),
    Owned(Vec<u32>),
}

impl StrataCodes<'_> {
    fn as_slice(&self) -> &[u32] {
        match self {
            StrataCodes::Borrowed(c) => c,
            StrataCodes::Shared(c) => c.as_nominal().expect("nominal strata column").0,
            StrataCodes::Owned(c) => c,
        }
    }
}

/// Builds the offline stratified sample of a [`Dataset`].
///
/// De-normalized datasets sample the single table as before. Star schemas
/// sample *fact rows* — strata attributes living in dimension tables are
/// read fact-ordered through the schema's shared join cache (gathered once
/// through the foreign key if the cache declines) — and keep the sampled
/// fact joined to the **original** dimension tables, so the sample remains
/// a normalized dataset and sampled queries still pay the (devirtualized)
/// join. Strata are keyed on attribute *values* (not dictionary codes), so
/// the sampled rows are identical to the de-normalized form's even when a
/// dimension table's dictionary assigns codes in a different order.
pub fn build_stratified_sample_dataset(
    dataset: &Dataset,
    strata_columns: &[String],
    rate: f64,
    seed: u64,
) -> Dataset {
    match dataset {
        Dataset::Denormalized(t) => Dataset::Denormalized(Arc::new(build_stratified_sample(
            t,
            strata_columns,
            rate,
            seed,
        ))),
        Dataset::Star(s) => {
            let fact = s.fact();
            // Each present nominal strata column: its fact-ordered codes
            // (borrowed, cache-shared, or gathered) plus the value-key
            // table of its dictionary (the materialization shares the
            // dimension dictionary, so either source gives the same keys).
            let holders: Vec<(StrataCodes<'_>, Vec<u64>)> = strata_columns
                .iter()
                .filter_map(|name| {
                    if let Ok(c) = fact.column(name) {
                        return c.as_nominal().map(|(codes, dict)| {
                            (StrataCodes::Borrowed(codes), dictionary_value_keys(dict))
                        });
                    }
                    let (spec, dim) = s.dimension_of_column(name)?;
                    let dim_col = dim.column(name).ok()?;
                    let (codes, dict) = dim_col.as_nominal()?;
                    let value_keys = dictionary_value_keys(dict);
                    if let Some(shared) = s.materialize_join(name) {
                        return Some((StrataCodes::Shared(shared), value_keys));
                    }
                    // Cache declined: gather fact-ordered codes transiently.
                    let fk = fact.column(&spec.fk_name).ok()?.as_int()?;
                    Some((
                        StrataCodes::Owned(fk.iter().map(|&k| codes[k as usize]).collect()),
                        value_keys,
                    ))
                })
                .collect();
            let strata_cols: Vec<StrataCol<'_>> = holders
                .iter()
                .map(|(h, value_keys)| StrataCol {
                    codes: h.as_slice(),
                    value_keys: value_keys.clone(),
                })
                .collect();
            let chosen = choose_stratified_rows(fact.num_rows(), &strata_cols, rate, seed);
            let sampled_fact = fact
                .take(&chosen)
                .renamed(format!("{}_sample", fact.name()));
            // The sample schema inherits the source's join-cache capacity:
            // an operator who capped (or disabled) materialization on the
            // dataset gets the same bound on the sample.
            Dataset::Star(Arc::new(
                StarSchema::with_join_cache_capacity(
                    Arc::new(sampled_fact),
                    s.dimensions().to_vec(),
                    s.join_cache_stats().capacity,
                )
                .expect("sampled fact keeps valid foreign keys"),
            ))
        }
    }
}

impl SystemAdapter for StratifiedAdapter {
    fn name(&self) -> &str {
        "stratified"
    }

    fn prepare(&mut self, dataset: &Dataset, settings: &Settings) -> Result<PrepStats, CoreError> {
        self.workers = settings.effective_workers();
        if let Some(existing) = &self.source {
            if existing.ptr_eq(dataset) {
                self.z = settings.z_value();
                self.overhead_units = settings.seconds_to_units(self.config.per_query_overhead_s);
                return Ok(self.prep);
            }
        }
        let sample = build_stratified_sample_dataset(
            dataset,
            &self.config.strata_columns,
            self.config.sampling_rate,
            settings.seed,
        );
        let rows = dataset.fact_rows() as f64;
        let sample_rows = sample.fact_rows() as f64;
        self.population = dataset.fact_rows() as u64;
        // Column min/max stats power the planner's dense bucketed binning;
        // warming them here keeps the O(rows) scan out of submit().
        sample.warm_numeric_stats();
        self.sample = Some(sample);
        self.source = Some(dataset.clone());
        self.z = settings.z_value();
        self.overhead_units = settings.seconds_to_units(self.config.per_query_overhead_s);
        self.prep = PrepStats {
            load_units: (rows * self.config.load_units_per_row).round() as u64,
            preprocess_units: (rows * self.config.preprocess_units_per_row
                + sample_rows * self.config.preprocess_units_per_sample_row)
                .round() as u64,
            // The paper: "each connection must execute a warm-up query".
            warmup_units: (sample_rows * self.config.cost_base).round() as u64
                + self.overhead_units,
        };
        Ok(self.prep)
    }

    fn submit(&mut self, query: &Query) -> Box<dyn QueryHandle> {
        let sample = self
            .sample
            .as_ref()
            .expect("prepare() must run before submit()")
            .clone();
        // One compilation serves both the cost model and the entire scan.
        let plan = CompiledPlan::compile(&sample, query)
            .expect("driver-validated query binds against the sample");
        let cost = self.config.row_cost(&plan);
        let mut run = ChunkedRun::from_plan(
            plan,
            None,
            SnapshotMode::EstimateAtEnd {
                z: self.z,
                population: self.population,
            },
        );
        run.set_row_cost(cost);
        run.set_match_cost(self.config.match_cost);
        run.set_startup_units(self.overhead_units);
        run.set_workers(self.workers);
        Box::new(StratifiedHandle { run })
    }
}

struct StratifiedHandle {
    run: ChunkedRun,
}

impl QueryHandle for StratifiedHandle {
    fn step(&mut self, granted: u64) -> StepStatus {
        let units = self.run.advance(granted);
        if self.run.is_done() {
            StepStatus::Done { units }
        } else {
            StepStatus::Running { units }
        }
    }

    fn snapshot(&self) -> Option<idebench_core::AggResult> {
        self.run.snapshot()
    }

    fn is_done(&self) -> bool {
        self.run.is_done()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idebench_core::spec::{AggregateSpec, BinDef};
    use idebench_core::{BinCoord, BinKey, VizSpec};
    use idebench_query::execute_exact;
    use idebench_storage::{DataType, TableBuilder};

    fn table(n: usize) -> Table {
        let mut b = TableBuilder::with_fields(
            "flights",
            &[
                ("carrier", DataType::Nominal),
                ("origin_state", DataType::Nominal),
                ("dep_delay", DataType::Float),
            ],
        );
        for i in 0..n {
            // Carrier "R" is rare: 1 in 500 rows.
            let c = if i % 500 == 0 {
                "R"
            } else if i % 2 == 0 {
                "AA"
            } else {
                "DL"
            };
            let s = if i % 3 == 0 { "CA" } else { "NY" };
            b.push_row(&[c.into(), s.into(), ((i % 83) as f64).into()])
                .unwrap();
        }
        b.finish()
    }

    fn dataset(n: usize) -> Dataset {
        Dataset::Denormalized(Arc::new(table(n)))
    }

    fn count_query() -> Query {
        let spec = VizSpec::new(
            "v",
            "flights",
            vec![BinDef::Nominal {
                dimension: "carrier".into(),
            }],
            vec![AggregateSpec::count()],
        );
        Query::for_viz(&spec, None)
    }

    #[test]
    fn sample_size_tracks_rate() {
        let t = table(10_000);
        let s = build_stratified_sample(&t, &["carrier".into()], 0.1, 7);
        let ratio = s.num_rows() as f64 / t.num_rows() as f64;
        assert!((ratio - 0.1).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn rare_strata_always_represented() {
        let t = table(10_000);
        // 20 rows of carrier "R" at 0.1% sampling would usually vanish with
        // uniform sampling; stratification keeps at least one.
        let s = build_stratified_sample(&t, &["carrier".into()], 0.001, 7);
        let (codes, dict) = s.column("carrier").unwrap().as_nominal().unwrap();
        let r_code = dict.code("R").expect("dictionary shared with source");
        assert!(codes.contains(&r_code), "rare stratum lost");
    }

    #[test]
    fn sample_deterministic_per_seed() {
        let t = table(5_000);
        let a = build_stratified_sample(&t, &["carrier".into()], 0.05, 9);
        let b = build_stratified_sample(&t, &["carrier".into()], 0.05, 9);
        assert_eq!(a, b);
        let c = build_stratified_sample(&t, &["carrier".into()], 0.05, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn missing_strata_columns_fall_back() {
        let t = table(1_000);
        let s = build_stratified_sample(&t, &["ghost".into()], 0.1, 7);
        // One giant stratum → plain uniform sample of ~10%.
        assert!((s.num_rows() as f64 - 100.0).abs() <= 1.0);
    }

    #[test]
    fn blocking_no_result_until_sample_scanned() {
        let ds = dataset(10_000);
        let mut adapter = StratifiedAdapter::with_defaults();
        adapter.prepare(&ds, &Settings::default()).unwrap();
        let mut h = adapter.submit(&count_query());
        h.step(10);
        assert!(h.snapshot().is_none());
        while !h.step(100_000).is_done() {}
        let snap = h.snapshot().unwrap();
        assert!(!snap.exact);
    }

    #[test]
    fn estimates_scale_to_population() {
        let ds = dataset(50_000);
        let mut adapter = StratifiedAdapter::with_defaults();
        adapter.prepare(&ds, &Settings::default()).unwrap();
        let mut h = adapter.submit(&count_query());
        while !h.step(1_000_000).is_done() {}
        let snap = h.snapshot().unwrap();
        let total: f64 = snap.bins.values().map(|b| b.values[0]).sum();
        // Scale-up estimate of total row count ≈ population.
        assert!(
            (total - 50_000.0).abs() / 50_000.0 < 0.02,
            "total estimate {total}"
        );
        // Margins are reported.
        assert!(snap.bins.values().all(|b| b.margins[0] >= 0.0));
    }

    #[test]
    fn estimate_close_to_ground_truth_per_bin() {
        let ds = dataset(50_000);
        let gt = execute_exact(&ds, &count_query()).unwrap();
        let mut adapter = StratifiedAdapter::with_defaults();
        adapter.prepare(&ds, &Settings::default()).unwrap();
        let mut h = adapter.submit(&count_query());
        while !h.step(1_000_000).is_done() {}
        let snap = h.snapshot().unwrap();
        let aa = BinKey::d1(BinCoord::Cat(0));
        let est = snap.value(&aa, 0).unwrap();
        let truth = gt.value(&aa, 0).unwrap();
        assert!(
            (est - truth).abs() / truth < 0.05,
            "est {est} truth {truth}"
        );
    }

    #[test]
    fn per_query_overhead_delays_start() {
        let ds = dataset(10_000);
        let mut adapter = StratifiedAdapter::with_defaults();
        adapter.prepare(&ds, &Settings::default()).unwrap();
        // Default overhead = 0.06 s × 1M units/s = 60k units.
        let mut h = adapter.submit(&count_query());
        let st = h.step(30_000);
        assert_eq!(st.units(), 30_000, "grant fully absorbed by overhead");
        assert!(h.snapshot().is_none(), "no result while planning");
        // The sample scan itself (~1k rows) is tiny next to the overhead.
        while !h.step(50_000).is_done() {}
        assert!(h.snapshot().is_some());
    }

    /// A star twin of `table(n)`: carrier moves into a dimension reached by
    /// an FK whose codes match the de-normalized column's exactly.
    fn star_dataset(n: usize) -> Dataset {
        use idebench_storage::{DimensionSpec, Value};
        let mut f = TableBuilder::with_fields(
            "flights",
            &[
                ("origin_state", DataType::Nominal),
                ("dep_delay", DataType::Float),
                ("carrier_key", DataType::Int),
            ],
        );
        // Mirror table(n)'s carrier sequence as FKs: R=0? No — dimension
        // rows are in first-seen order (R at i=0, then AA, DL), matching
        // the de-normalized dictionary's code assignment.
        let mut d = TableBuilder::with_fields("carriers", &[("carrier", DataType::Nominal)]);
        for c in ["R", "AA", "DL"] {
            d.push_row(&[Value::Str(c.into())]).unwrap();
        }
        for i in 0..n {
            let key = if i % 500 == 0 {
                0i64
            } else if i % 2 == 0 {
                1
            } else {
                2
            };
            let s = if i % 3 == 0 { "CA" } else { "NY" };
            f.push_row(&[s.into(), ((i % 83) as f64).into(), key.into()])
                .unwrap();
        }
        Dataset::Star(Arc::new(
            StarSchema::new(
                Arc::new(f.finish()),
                vec![(
                    DimensionSpec::new("carriers", "carrier_key", vec!["carrier".into()]),
                    Arc::new(d.finish()),
                )],
            )
            .unwrap(),
        ))
    }

    #[test]
    fn permuted_dimension_codes_sample_the_same_rows() {
        // A star twin whose carrier dimension assigns dictionary codes in a
        // *different* order than the de-normalized column's first-seen
        // order. Value-keyed strata must still pick exactly the same rows.
        use idebench_storage::{DimensionSpec, Value};
        let n = 4_000;
        let denorm = table(n);
        let mut f = TableBuilder::with_fields(
            "flights",
            &[
                ("origin_state", DataType::Nominal),
                ("dep_delay", DataType::Float),
                ("carrier_key", DataType::Int),
            ],
        );
        // Dimension ordered AA, DL, R — denorm first-seen order is R, AA, DL.
        let mut d = TableBuilder::with_fields("carriers", &[("carrier", DataType::Nominal)]);
        for c in ["AA", "DL", "R"] {
            d.push_row(&[Value::Str(c.into())]).unwrap();
        }
        for i in 0..n {
            let key = if i % 500 == 0 {
                2i64 // R
            } else if i % 2 == 0 {
                0 // AA
            } else {
                1 // DL
            };
            let s = if i % 3 == 0 { "CA" } else { "NY" };
            f.push_row(&[s.into(), ((i % 83) as f64).into(), key.into()])
                .unwrap();
        }
        let star = Dataset::Star(Arc::new(
            StarSchema::new(
                Arc::new(f.finish()),
                vec![(
                    DimensionSpec::new("carriers", "carrier_key", vec!["carrier".into()]),
                    Arc::new(d.finish()),
                )],
            )
            .unwrap(),
        ));
        let strata = vec!["carrier".to_string(), "origin_state".to_string()];
        let flat_sample = build_stratified_sample(&denorm, &strata, 0.1, 7);
        let star_sample = build_stratified_sample_dataset(&star, &strata, 0.1, 7);
        let star_fact = star_sample.as_star().unwrap().fact();
        assert_eq!(flat_sample.num_rows(), star_fact.num_rows());
        assert_eq!(
            flat_sample.column("dep_delay").unwrap().as_float().unwrap(),
            star_fact.column("dep_delay").unwrap().as_float().unwrap(),
            "identical fact rows sampled despite permuted dimension codes"
        );
    }

    #[test]
    fn star_schema_samples_matching_fact_rows() {
        let n = 10_000;
        let star = star_dataset(n);
        let mut adapter = StratifiedAdapter::with_defaults();
        adapter.prepare(&star, &Settings::default()).unwrap();
        let ratio = adapter.sample_rows() as f64 / n as f64;
        assert!((ratio - 0.1).abs() < 0.01, "ratio {ratio}");
        // The sample is still a star schema joined to the full dimensions,
        // and its estimates scale to the *fact* population.
        let mut h = adapter.submit(&count_query());
        while !h.step(1_000_000).is_done() {}
        let snap = h.snapshot().unwrap();
        let total: f64 = snap.bins.values().map(|b| b.values[0]).sum();
        let rel = (total - n as f64).abs() / (n as f64);
        assert!(rel < 0.02, "total estimate {total}");
        // Rare carrier "R" survives stratification through the join.
        assert!(
            snap.bins.len() >= 3,
            "rare stratum lost: {} bins",
            snap.bins.len()
        );
    }

    #[test]
    fn prepare_reports_offline_costs() {
        let ds = dataset(10_000);
        let mut adapter = StratifiedAdapter::with_defaults();
        let prep = adapter.prepare(&ds, &Settings::default()).unwrap();
        assert_eq!(prep.load_units, 10_000);
        // Source scan (10k x 0.35) + sample write (~1k x 2.0).
        assert!(prep.preprocess_units >= 5_400 && prep.preprocess_units <= 5_600);
        assert!(prep.warmup_units > 0);
        // Idempotent.
        let again = adapter.prepare(&ds, &Settings::default()).unwrap();
        assert_eq!(prep, again);
    }

    #[test]
    fn shared_service_builds_the_sample_once() {
        use idebench_core::{EngineService, QueryOptions};
        let ds = dataset(10_000);
        let svc = StratifiedAdapter::with_defaults().into_service();
        let p0 = svc.open_session(0, &ds, &Settings::default()).unwrap();
        // Second session: prepare is idempotent on the shared instance —
        // same offline sample, same reported costs.
        let p1 = svc.open_session(1, &ds, &Settings::default()).unwrap();
        assert_eq!(p0, p1);
        let t = svc.submit(
            &count_query(),
            QueryOptions::for_session(1).with_step_quantum(1_000_000),
        );
        assert!(t.drive().is_done());
        let snap = t.snapshot().unwrap();
        assert!(!snap.exact, "sample scan yields estimates");
    }
}
