//! Recursive-descent JSON text parser for the serde_json shim.

use crate::{Error, Map, Number, Value};

pub(crate) fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error::msg(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal (expected `{word}`)")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain UTF-8 bytes.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            if self.pos > start {
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let ch = if (0xd800..0xdc00).contains(&code) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                char::from_u32(c)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(ch.ok_or_else(|| self.err("invalid unicode escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("short unicode escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            code = code * 16 + d;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            // Preserve 64-bit integers exactly; overflow falls back to f64.
            if text.starts_with('-') {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::Number(Number::I64(i)));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(n)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F64(f)))
            .map_err(|_| self.err("invalid number"))
    }
}
