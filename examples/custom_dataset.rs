//! Customizability end-to-end (paper §3.2): benchmark a *different* dataset
//! without writing any schema glue — infer the workload profile straight
//! from the table and run the standard pipeline on it.
//!
//! ```sh
//! cargo run --release --example custom_dataset
//! ```

use idebench::core::ExecutionMode;
use idebench::prelude::*;
use idebench::query::CachedGroundTruth;
use idebench::workflow::{DataProfile, GeneratorConfig};
use std::sync::Arc;

fn main() {
    // A dataset the benchmark has never seen: e-commerce orders.
    let table = idebench::datagen::orders::generate(150_000, 77);
    println!(
        "dataset: {} ({} rows x {} columns)",
        table.name(),
        table.num_rows(),
        table.num_columns()
    );

    // Infer the exploration profile: which columns are dimensions, their
    // category domains, sensible bin widths.
    let profile = DataProfile::infer(&table, 25, 64);
    println!("\ninferred profile:");
    for dim in &profile.dimensions {
        match dim {
            idebench::workflow::DimensionProfile::Nominal { name, categories } => {
                println!("  {name:<12} nominal, {} categories", categories.len());
            }
            idebench::workflow::DimensionProfile::Quantitative {
                name,
                bin_width,
                min,
                max,
                measure,
                ..
            } => {
                println!(
                    "  {name:<12} quantitative [{min:.1}, {max:.1}] width {bin_width}{}",
                    if *measure { ", measure" } else { "" }
                );
            }
        }
    }

    // Generate workloads against the inferred profile and benchmark two
    // engines on them.
    let dataset = Dataset::Denormalized(Arc::new(table));
    let generator = idebench::workflow::WorkflowGenerator::with_profile(
        WorkflowType::Mixed,
        7,
        profile,
        GeneratorConfig::default(),
    );
    let workflows = generator.generate_batch(3, 12);

    let settings = Settings::default()
        .with_time_requirement_ms(1_000)
        .with_execution(ExecutionMode::Virtual { work_rate: 1e5 });
    let driver = BenchmarkDriver::new(settings);
    let mut gt = CachedGroundTruth::new(dataset.clone());
    let mut reports = Vec::new();
    for name in ["exact", "progressive"] {
        let mut adapter: Box<dyn SystemAdapter> = match name {
            "exact" => Box::new(idebench::engine_exact::ExactAdapter::with_defaults()),
            _ => Box::new(idebench::engine_progressive::ProgressiveAdapter::with_defaults()),
        };
        for wf in &workflows {
            let outcome = driver
                .run_workflow(adapter.as_mut(), &dataset, wf)
                .expect("workflow runs");
            reports.push(DetailedReport::from_outcome(&outcome, &mut gt));
        }
    }
    let merged = DetailedReport::merged(reports);
    println!("\n{}", SummaryReport::from_detailed(&merged).render_text());
}
