//! The IDEBench command-line runner (paper §4.4): load a configuration,
//! simulate its workloads against every configured system, and emit the
//! summary and detailed reports.
//!
//! ```sh
//! # scaffold a configuration template
//! cargo run --release -p idebench-bench --bin idebench_run -- --init my.json
//! # run it
//! cargo run --release -p idebench-bench --bin idebench_run -- --config my.json --out results
//! ```
//!
//! Without `--config`, runs the paper's default configuration (all four
//! systems × five time requirements × 50 workflows — several minutes).

use idebench_bench::config::BenchmarkConfig;
use std::path::PathBuf;

fn main() {
    let mut config_path: Option<PathBuf> = None;
    let mut init_path: Option<PathBuf> = None;
    let mut out_dir = PathBuf::from("bench-results");
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--config" => config_path = iter.next().map(PathBuf::from),
            "--init" => init_path = iter.next().map(PathBuf::from),
            "--out" => {
                if let Some(dir) = iter.next() {
                    out_dir = PathBuf::from(dir);
                }
            }
            "--help" | "-h" => {
                eprintln!("usage: idebench_run [--config FILE | --init FILE] [--out DIR]");
                return;
            }
            other => {
                eprintln!("unknown flag {other}; see --help");
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = init_path {
        std::fs::write(&path, BenchmarkConfig::default().to_json()).expect("write template");
        println!("wrote configuration template to {}", path.display());
        return;
    }

    let config = match config_path {
        Some(path) => BenchmarkConfig::load(&path).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        }),
        None => BenchmarkConfig::default(),
    };
    println!(
        "running: {} rows, systems {:?}, TRs {:?} ms",
        config.dataset.rows, config.systems, config.time_requirements_ms
    );

    let run = config
        .execute(|system, tr, queries| {
            eprintln!("  done: {system} @ TR={tr}ms ({queries} queries)")
        })
        .unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        });

    println!("\n=== summary (per system x TR) ===");
    print!("{}", run.summary.render_text());
    println!("\n=== summary (per system x TR x workflow type) ===");
    print!("{}", run.summary_by_kind.render_text());

    std::fs::create_dir_all(&out_dir).expect("create output dir");
    let csv_path = out_dir.join("detailed_report.csv");
    std::fs::write(&csv_path, run.detailed.to_csv()).expect("write csv");
    let json_path = out_dir.join("summary.json");
    std::fs::write(
        &json_path,
        serde_json::to_string_pretty(&run.summary).expect("summary serializes"),
    )
    .expect("write summary");
    println!(
        "\n[wrote {} and {}]",
        csv_path.display(),
        json_path.display()
    );
}
