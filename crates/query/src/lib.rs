//! Query-evaluation primitives shared by all IDEBench engines.
//!
//! The engines in this workspace differ in *when* and *over which rows* they
//! evaluate a query (blocking full scans, progressive shuffled prefixes,
//! offline samples, random join walks) — but the per-row semantics of
//! filtering, binning and aggregation are identical. This crate centralizes
//! those semantics:
//!
//! - [`resolve`]: binds a [`idebench_core::Query`]'s column names against a
//!   [`idebench_storage::Dataset`], transparently following star-schema
//!   foreign keys.
//! - [`filter`]: compiled filter trees with per-row and vectorized
//!   evaluation.
//! - [`binning`]: compiled 1D/2D nominal/quantitative binning.
//! - [`aggregate`]: grouped accumulators with exact finalization and
//!   sample-scale-up estimation including CLT confidence intervals.
//! - [`executor`]: a chunked query runner (the building block engines step),
//!   plus `execute_exact` for one-shot exact evaluation.
//! - [`ground_truth`]: a caching [`idebench_core::GroundTruthProvider`].
//! - [`sql`]: SQL rendering of queries (paper Figure 4).

pub mod aggregate;
pub mod binning;
pub mod executor;
pub mod filter;
pub mod ground_truth;
pub mod resolve;
pub mod sql;

pub use aggregate::{BinAcc, GroupedAcc, MeasureAcc};
pub use binning::CompiledBinning;
pub use executor::{execute_exact, ChunkedRun, SnapshotMode};
pub use filter::CompiledFilter;
pub use ground_truth::{enumerate_workload_queries, CachedGroundTruth};
pub use resolve::{ResolvedColumn, ResolvedQuery};
pub use sql::to_sql;
