//! The quality metrics of paper §4.7.
//!
//! All metrics compare a delivered [`AggResult`] against the ground truth
//! for the same query. When a query delivered no result (time requirement
//! violated with nothing fetchable), the conventions follow the paper:
//! missing bins = 1, and error metrics are undefined (`None` here, empty
//! cells in reports).

use crate::result::{AggResult, BinKey};
use serde::{Deserialize, Serialize};

/// Evaluation results for a single query (one row of the detailed report).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Ratio of ground-truth bins with no delivered result (§4.7).
    pub missing_bins: f64,
    /// Bins delivered by the system (Table 1 `bins delivered`).
    pub bins_delivered: usize,
    /// Bins in the ground truth (Table 1 `bins in gt`).
    pub bins_in_gt: usize,
    /// Mean relative error over delivered bins with nonzero truth.
    pub rel_error_avg: Option<f64>,
    /// Standard deviation of those relative errors.
    pub rel_error_stdev: Option<f64>,
    /// Symmetric mean absolute percentage error (the paper's suggested
    /// alternative, defined at zero truth).
    pub smape: Option<f64>,
    /// Cosine distance between delivered and true bin-value vectors, missing
    /// bins zero-filled (§4.7).
    pub cosine_distance: Option<f64>,
    /// Mean relative margin of error over delivered bins.
    pub margin_avg: Option<f64>,
    /// Standard deviation of relative margins.
    pub margin_stdev: Option<f64>,
    /// Number of delivered per-bin values outside their margin (Table 1
    /// `bins ofm`).
    pub bins_out_of_margin: usize,
    /// Sum of delivered values / sum of true values over delivered bins.
    pub bias: Option<f64>,
}

impl Metrics {
    /// Metrics for a query that delivered nothing: everything is missing.
    pub fn all_missing(ground_truth: &AggResult) -> Metrics {
        Metrics {
            missing_bins: 1.0,
            bins_delivered: 0,
            bins_in_gt: ground_truth.bins_delivered(),
            rel_error_avg: None,
            rel_error_stdev: None,
            smape: None,
            cosine_distance: None,
            margin_avg: None,
            margin_stdev: None,
            bins_out_of_margin: 0,
            bias: None,
        }
    }

    /// Computes all §4.7 metrics for `result` against `ground_truth`.
    ///
    /// With multiple aggregates per query, per-bin values are compared
    /// component-wise and pooled into the same vectors, mirroring the
    /// paper's per-query reporting (Table 1 lists one row per query, with
    /// `rel_error_avg` the mean across all bins of the result).
    pub fn evaluate(result: &AggResult, ground_truth: &AggResult) -> Metrics {
        let gt_bins = ground_truth.bins_delivered();
        let mut delivered_in_gt = 0usize;

        let mut rel_errors: Vec<f64> = Vec::new();
        let mut smape_terms: Vec<f64> = Vec::new();
        let mut margins_rel: Vec<f64> = Vec::new();
        let mut out_of_margin = 0usize;
        let mut sum_f = 0.0f64;
        let mut sum_a = 0.0f64;
        // Dot products for cosine distance over the union of bins
        // (missing entries contribute zero).
        let mut dot = 0.0f64;
        let mut norm_f = 0.0f64;
        let mut norm_a = 0.0f64;

        for (key, gt_stats) in &ground_truth.bins {
            let res_stats = result.bins.get(key);
            if res_stats.is_some() {
                delivered_in_gt += 1;
            }
            for (i, &a) in gt_stats.values.iter().enumerate() {
                let f = res_stats
                    .and_then(|s| s.values.get(i).copied())
                    .unwrap_or(0.0);
                dot += f * a;
                norm_f += f * f;
                norm_a += a * a;
                if let Some(s) = res_stats {
                    let f = s.values.get(i).copied().unwrap_or(0.0);
                    if a != 0.0 {
                        rel_errors.push((f - a).abs() / a.abs());
                    }
                    let denom = f.abs() + a.abs();
                    smape_terms.push(if denom == 0.0 {
                        0.0
                    } else {
                        (f - a).abs() / denom
                    });
                    let margin = s.margins.get(i).copied().unwrap_or(0.0);
                    if f != 0.0 {
                        margins_rel.push(margin / f.abs());
                    }
                    // Exact engines report zero margins and exact values;
                    // only estimators can be "out of margin".
                    if !result.exact && (f - a).abs() > margin {
                        out_of_margin += 1;
                    }
                    sum_f += f;
                    sum_a += a;
                }
            }
        }

        // Bins the system delivered that are *not* in the ground truth
        // (possible for estimators that hallucinate a bin from a sampling
        // artifact) count against cosine similarity.
        for (key, s) in &result.bins {
            if !ground_truth.bins.contains_key(key) {
                for &f in &s.values {
                    norm_f += f * f;
                }
            }
        }

        let missing_bins = if gt_bins == 0 {
            0.0
        } else {
            (gt_bins - delivered_in_gt) as f64 / gt_bins as f64
        };

        let cosine_distance = if norm_f <= 0.0 || norm_a <= 0.0 {
            // Degenerate vectors: identical zeros = distance 0, else 1.
            if norm_f == norm_a {
                Some(0.0)
            } else {
                Some(1.0)
            }
        } else {
            Some((1.0 - dot / (norm_f.sqrt() * norm_a.sqrt())).clamp(0.0, 1.0))
        };

        Metrics {
            missing_bins,
            bins_delivered: result.bins_delivered(),
            bins_in_gt: gt_bins,
            rel_error_avg: mean(&rel_errors),
            rel_error_stdev: stdev(&rel_errors),
            smape: mean(&smape_terms),
            cosine_distance,
            margin_avg: mean(&margins_rel),
            margin_stdev: stdev(&margins_rel),
            bins_out_of_margin: out_of_margin,
            bias: if sum_a != 0.0 {
                Some(sum_f / sum_a)
            } else {
                None
            },
        }
    }

    /// Lists the ground-truth bins the result failed to deliver (used by the
    /// think-time experiment to show which bins speculation recovered).
    pub fn missing_bin_keys(result: &AggResult, ground_truth: &AggResult) -> Vec<BinKey> {
        let mut keys: Vec<BinKey> = ground_truth
            .bins
            .keys()
            .filter(|k| !result.bins.contains_key(*k))
            .cloned()
            .collect();
        keys.sort();
        keys
    }
}

/// Mean of a slice; `None` when empty.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Population standard deviation; `None` when empty.
pub fn stdev(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
    Some(var.sqrt())
}

/// Median of a slice; `None` when empty.
pub fn median(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in metric series"));
    let mid = v.len() / 2;
    Some(if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    })
}

/// Nearest-rank percentiles of `xs`, one per entry of `ps` (each in
/// `[0, 100]`); all `None` when `xs` is empty.
///
/// Uses the nearest-rank definition — the `⌈p/100·n⌉`-th smallest value
/// (1-indexed) — so every result is an observed sample and latency
/// percentiles (p50/p95/p99 in the summary and fleet reports) stay exactly
/// reproducible across report merges. Sorts once for any number of ranks;
/// use this over repeated [`percentile`] calls when extracting several
/// ranks from the same sample.
pub fn percentiles(xs: &[f64], ps: &[f64]) -> Vec<Option<f64>> {
    for &p in ps {
        assert!(
            (0.0..=100.0).contains(&p),
            "percentile requires p in [0,100], got {p}"
        );
    }
    if xs.is_empty() {
        return vec![None; ps.len()];
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    ps.iter()
        .map(|&p| {
            let rank = ((p / 100.0 * v.len() as f64).ceil() as usize).clamp(1, v.len());
            Some(v[rank - 1])
        })
        .collect()
}

/// Nearest-rank percentile (`p` in `[0, 100]`); `None` when empty. See
/// [`percentiles`] for the definition (and for extracting several ranks
/// with a single sort).
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    percentiles(xs, &[p]).pop().expect("one rank requested")
}

/// Standard normal quantile function (inverse CDF).
///
/// Acklam's rational approximation; max absolute error ≈ 1.15e-9, far below
/// anything that matters for confidence-interval z-values.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1), got {p}");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::{BinCoord, BinStats};

    fn key(i: i64) -> BinKey {
        BinKey::d1(BinCoord::Bucket(i))
    }

    fn gt_three_bins() -> AggResult {
        let mut gt = AggResult::empty_exact();
        gt.insert(key(0), BinStats::exact(vec![10.0]));
        gt.insert(key(1), BinStats::exact(vec![20.0]));
        gt.insert(key(2), BinStats::exact(vec![30.0]));
        gt
    }

    #[test]
    fn perfect_result_scores_zero_error() {
        let gt = gt_three_bins();
        let m = Metrics::evaluate(&gt, &gt);
        assert_eq!(m.missing_bins, 0.0);
        assert_eq!(m.rel_error_avg, Some(0.0));
        assert_eq!(m.smape, Some(0.0));
        assert!(m.cosine_distance.unwrap() < 1e-12);
        assert_eq!(m.bias, Some(1.0));
        assert_eq!(m.bins_out_of_margin, 0);
    }

    #[test]
    fn missing_bins_ratio() {
        let gt = gt_three_bins();
        let mut r = AggResult::empty_exact();
        r.insert(key(0), BinStats::exact(vec![10.0]));
        let m = Metrics::evaluate(&r, &gt);
        assert!((m.missing_bins - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.bins_delivered, 1);
        assert_eq!(m.bins_in_gt, 3);
    }

    #[test]
    fn relative_error_definition() {
        let gt = gt_three_bins();
        let mut r = AggResult::empty_exact();
        // +10% error on one bin, exact on another.
        r.insert(key(0), BinStats::exact(vec![11.0]));
        r.insert(key(1), BinStats::exact(vec![20.0]));
        let m = Metrics::evaluate(&r, &gt);
        assert!((m.rel_error_avg.unwrap() - 0.05).abs() < 1e-12);
        // bias over delivered bins: (11+20)/(10+20)
        assert!((m.bias.unwrap() - 31.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn zero_truth_excluded_from_mre_but_in_smape() {
        let mut gt = AggResult::empty_exact();
        gt.insert(key(0), BinStats::exact(vec![0.0]));
        gt.insert(key(1), BinStats::exact(vec![10.0]));
        let mut r = AggResult::empty_exact();
        r.insert(key(0), BinStats::exact(vec![2.0]));
        r.insert(key(1), BinStats::exact(vec![10.0]));
        let m = Metrics::evaluate(&r, &gt);
        // Only bin 1 contributes to MRE.
        assert_eq!(m.rel_error_avg, Some(0.0));
        // SMAPE of bin 0: |2-0|/(2+0) = 1; of bin 1: 0 → mean 0.5.
        assert!((m.smape.unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn out_of_margin_counting() {
        let mut gt = AggResult::empty_exact();
        gt.insert(key(0), BinStats::exact(vec![10.0]));
        gt.insert(key(1), BinStats::exact(vec![10.0]));
        let mut r = AggResult {
            processed_fraction: 0.5,
            ..AggResult::default()
        };
        // First bin: estimate 12 ± 1 → truth 10 outside margin.
        r.insert(key(0), BinStats::approximate(vec![12.0], vec![1.0]));
        // Second bin: estimate 11 ± 2 → truth inside margin.
        r.insert(key(1), BinStats::approximate(vec![11.0], vec![2.0]));
        let m = Metrics::evaluate(&r, &gt);
        assert_eq!(m.bins_out_of_margin, 1);
        // mean relative margin: (1/12 + 2/11)/2
        let expect = (1.0 / 12.0 + 2.0 / 11.0) / 2.0;
        assert!((m.margin_avg.unwrap() - expect).abs() < 1e-12);
    }

    #[test]
    fn cosine_distance_captures_shape() {
        let gt = gt_three_bins();
        // Same shape, scaled by 2: distance ~0 even though MRE = 1.
        let mut scaled = AggResult::empty_exact();
        for i in 0..3 {
            scaled.insert(
                key(i),
                BinStats::exact(vec![(10.0 + 10.0 * i as f64) * 2.0]),
            );
        }
        let m = Metrics::evaluate(&scaled, &gt);
        assert!(m.cosine_distance.unwrap() < 1e-12);
        assert!((m.rel_error_avg.unwrap() - 1.0).abs() < 1e-12);

        // Orthogonal-ish: only the missing-bin shape penalty applies.
        let mut bad = AggResult::empty_exact();
        bad.insert(key(0), BinStats::exact(vec![100.0]));
        let m2 = Metrics::evaluate(&bad, &gt);
        assert!(m2.cosine_distance.unwrap() > 0.5);
    }

    #[test]
    fn all_missing_conventions() {
        let gt = gt_three_bins();
        let m = Metrics::all_missing(&gt);
        assert_eq!(m.missing_bins, 1.0);
        assert_eq!(m.rel_error_avg, None);
        assert_eq!(m.bins_in_gt, 3);
    }

    #[test]
    fn empty_ground_truth_is_not_missing() {
        let gt = AggResult::empty_exact();
        let r = AggResult::empty_exact();
        let m = Metrics::evaluate(&r, &gt);
        assert_eq!(m.missing_bins, 0.0);
        assert_eq!(m.cosine_distance, Some(0.0));
    }

    #[test]
    fn missing_bin_keys_sorted() {
        let gt = gt_three_bins();
        let mut r = AggResult::empty_exact();
        r.insert(key(1), BinStats::exact(vec![20.0]));
        let missing = Metrics::missing_bin_keys(&r, &gt);
        assert_eq!(missing, vec![key(0), key(2)]);
    }

    #[test]
    fn helpers_mean_stdev_median() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        assert_eq!(stdev(&[1.0, 1.0]), Some(0.0));
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 50.0), None);
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&xs, 50.0), Some(50.0));
        assert_eq!(percentile(&xs, 95.0), Some(95.0));
        assert_eq!(percentile(&xs, 99.0), Some(99.0));
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 100.0), Some(100.0));
        // Small samples: always an observed value.
        assert_eq!(percentile(&[7.0, 3.0, 5.0], 50.0), Some(5.0));
        assert_eq!(percentile(&[7.0, 3.0, 5.0], 99.0), Some(7.0));
        // Multi-rank helper agrees with the single-rank calls.
        assert_eq!(
            percentiles(&xs, &[50.0, 95.0, 99.0]),
            vec![Some(50.0), Some(95.0), Some(99.0)]
        );
        assert_eq!(percentiles(&[], &[50.0, 99.0]), vec![None, None]);
    }

    #[test]
    fn normal_quantile_matches_known_values() {
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-6);
        assert!((normal_quantile(0.95) - 1.644854).abs() < 1e-6);
        assert!((normal_quantile(0.5)).abs() < 1e-9);
        assert!((normal_quantile(0.025) + 1.959964).abs() < 1e-6);
        // Tail region exercises the low/high branches.
        assert!((normal_quantile(0.001) + 3.090232).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "quantile requires p in (0,1)")]
    fn normal_quantile_rejects_bounds() {
        normal_quantile(1.0);
    }
}
