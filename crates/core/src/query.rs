//! The resolved query the driver hands to system adapters.

use crate::spec::{AggregateSpec, BinDef, FilterExpr, VizSpec};
use serde::{DeError, Deserialize, Serialize, Value};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock};

/// A fully-resolved aggregate query.
///
/// This is what the benchmark driver sends to a [`crate::SystemAdapter`]:
/// the viz's binning and aggregates, plus the *composed* filter — the viz's
/// own filter AND-combined with the filters/selections propagated from all
/// linked upstream visualizations (paper §2.2 "linking").
///
/// # Canonical-key memoization
///
/// [`Query::canonical_key`] (and [`Query::fingerprint`], which hashes it)
/// is computed once per query value and cached: caches on hot paths — the
/// fleet's cross-session semantic cache, ground-truth memoization, the
/// progressive engine's reuse store — all look queries up by key, and
/// re-serializing the binning/aggregate/filter trees to JSON on every
/// lookup dominated their cost.
///
/// The memo must never outlive the fields it was computed from: a key read
/// before an in-place mutation would otherwise poison every fingerprint
/// keyed cache downstream (the semantic cache could serve a *different
/// query's* result). The fields are therefore private: reads go through
/// the accessors ([`Query::binning`], [`Query::filter`], …) and every
/// mutation goes through an invalidating setter ([`Query::set_filter`],
/// [`Query::compose_filter`], [`Query::set_bin`]) that drops the memo —
/// the stale-key bug is unrepresentable outside this module. Cloning also
/// resets the memo, so a clone-then-mutate never inherits a stale key.
#[derive(Debug)]
pub struct Query {
    /// Name of the visualization this query refreshes.
    viz_name: String,
    /// Source table name.
    source: String,
    /// Binning definitions (1 or 2).
    binning: Vec<BinDef>,
    /// Aggregates per bin.
    aggregates: Vec<AggregateSpec>,
    /// Composed filter, if any.
    filter: Option<FilterExpr>,
    /// Lazily computed canonical key (see the type-level docs).
    key: OnceLock<Arc<str>>,
}

impl Clone for Query {
    /// Clones the query *fields*; the canonical-key memo is reset so a
    /// clone that is subsequently mutated (speculative filter composition)
    /// cannot inherit a stale key.
    fn clone(&self) -> Self {
        Query {
            viz_name: self.viz_name.clone(),
            source: self.source.clone(),
            binning: self.binning.clone(),
            aggregates: self.aggregates.clone(),
            filter: self.filter.clone(),
            key: OnceLock::new(),
        }
    }
}

impl PartialEq for Query {
    /// Semantic fields only — the key memo is derived state.
    fn eq(&self, other: &Self) -> bool {
        self.viz_name == other.viz_name
            && self.source == other.source
            && self.binning == other.binning
            && self.aggregates == other.aggregates
            && self.filter == other.filter
    }
}

impl Serialize for Query {
    fn to_json(&self) -> Value {
        let mut m = serde::Map::new();
        m.insert("viz_name".into(), self.viz_name.to_json());
        m.insert("source".into(), self.source.to_json());
        m.insert("binning".into(), self.binning.to_json());
        m.insert("aggregates".into(), self.aggregates.to_json());
        m.insert("filter".into(), self.filter.to_json());
        Value::Object(m)
    }
}

impl Deserialize for Query {
    fn from_json(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::expected("object", "Query"))?;
        let field = |name: &str| obj.get(name).ok_or_else(|| DeError::missing(name, "Query"));
        Ok(Query {
            viz_name: String::from_json(field("viz_name")?)?,
            source: String::from_json(field("source")?)?,
            binning: Vec::from_json(field("binning")?)?,
            aggregates: Vec::from_json(field("aggregates")?)?,
            filter: Option::from_json(field("filter")?)?,
            key: OnceLock::new(),
        })
    }
}

impl Query {
    /// Builds a query for a viz with an already-composed filter.
    pub fn for_viz(spec: &VizSpec, filter: Option<FilterExpr>) -> Self {
        Query {
            viz_name: spec.name.clone(),
            source: spec.source.clone(),
            binning: spec.binning.clone(),
            aggregates: spec.aggregates.clone(),
            filter,
            key: OnceLock::new(),
        }
    }

    /// Builds a query from its parts (an already-composed filter included).
    pub fn new(
        viz_name: impl Into<String>,
        source: impl Into<String>,
        binning: Vec<BinDef>,
        aggregates: Vec<AggregateSpec>,
        filter: Option<FilterExpr>,
    ) -> Self {
        Query {
            viz_name: viz_name.into(),
            source: source.into(),
            binning,
            aggregates,
            filter,
            key: OnceLock::new(),
        }
    }

    /// Name of the visualization this query refreshes.
    pub fn viz_name(&self) -> &str {
        &self.viz_name
    }

    /// Source table name.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Binning definitions (1 or 2).
    pub fn binning(&self) -> &[BinDef] {
        &self.binning
    }

    /// Aggregates computed per bin.
    pub fn aggregates(&self) -> &[AggregateSpec] {
        &self.aggregates
    }

    /// The composed filter, if any.
    pub fn filter(&self) -> Option<&FilterExpr> {
        self.filter.as_ref()
    }

    /// Renames the viz this query refreshes. The viz name is deliberately
    /// *not* part of the canonical key, so this never touches the memo.
    pub fn set_viz_name(&mut self, name: impl Into<String>) {
        self.viz_name = name.into();
    }

    /// Replaces the composed filter, invalidating the canonical-key memo.
    pub fn set_filter(&mut self, filter: Option<FilterExpr>) {
        self.filter = filter;
        self.invalidate_key();
    }

    /// AND-composes `extra` onto the existing filter (the progressive
    /// engine's speculative-selection pattern), invalidating the memo.
    pub fn compose_filter(&mut self, extra: FilterExpr) {
        self.filter = Some(FilterExpr::and_opt(self.filter.take(), extra));
        self.invalidate_key();
    }

    /// Replaces binning definition `idx` (the driver's count→width
    /// resolution), invalidating the memo.
    ///
    /// # Panics
    /// Panics when `idx` is out of bounds.
    pub fn set_bin(&mut self, idx: usize, def: BinDef) {
        self.binning[idx] = def;
        self.invalidate_key();
    }

    /// Drops the memoized canonical key (every semantic setter ends here).
    fn invalidate_key(&mut self) {
        self.key = OnceLock::new();
    }

    /// A canonical, human-readable key identifying the *semantics* of the
    /// query (binning + aggregates + filter + source), independent of which
    /// viz or interaction issued it. Used for ground-truth caching and
    /// result reuse.
    ///
    /// Computed once per query value and memoized (cheap `Arc` share on
    /// every further call); the invalidating setters ([`Self::set_filter`],
    /// [`Self::compose_filter`], [`Self::set_bin`]) keep the memo honest
    /// across in-place mutation — see the type-level docs.
    pub fn canonical_key(&self) -> Arc<str> {
        Arc::clone(self.key.get_or_init(|| {
            // serde_json's field ordering is declaration order, which is
            // stable.
            let mut key = String::with_capacity(128);
            key.push_str(&self.source);
            key.push('|');
            key.push_str(&serde_json::to_string(&self.binning).expect("binning serializes"));
            key.push('|');
            key.push_str(&serde_json::to_string(&self.aggregates).expect("aggregates serialize"));
            key.push('|');
            match &self.filter {
                Some(f) => {
                    key.push_str(&serde_json::to_string(f).expect("filter serializes"));
                }
                None => key.push_str("null"),
            }
            key.into()
        }))
    }

    /// A 64-bit fingerprint of [`Self::canonical_key`] (memoized through
    /// the same cache).
    pub fn fingerprint(&self) -> u64 {
        let mut h = rustc_hash::FxHasher::default();
        self.canonical_key().hash(&mut h);
        h.finish()
    }

    /// All columns the query touches (binning dims + measures + filters).
    pub fn referenced_columns(&self) -> Vec<&str> {
        let mut cols: Vec<&str> = self.binning.iter().map(BinDef::dimension).collect();
        for a in &self.aggregates {
            if let Some(d) = &a.dimension {
                cols.push(d);
            }
        }
        if let Some(f) = &self.filter {
            cols.extend(f.columns());
        }
        cols
    }

    /// Number of leaf filter predicates (the specificity proxy of Exp 4).
    pub fn filter_specificity(&self) -> usize {
        self.filter.as_ref().map_or(0, FilterExpr::num_predicates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AggFunc, Predicate};

    fn viz() -> VizSpec {
        VizSpec::new(
            "viz_1",
            "flights",
            vec![BinDef::Nominal {
                dimension: "carrier".into(),
            }],
            vec![AggregateSpec::over(AggFunc::Avg, "dep_delay")],
        )
    }

    fn range(col: &str, min: f64, max: f64) -> FilterExpr {
        FilterExpr::pred(Predicate::Range {
            column: col.into(),
            min,
            max,
        })
    }

    #[test]
    fn fingerprint_ignores_viz_name() {
        let q1 = Query::for_viz(&viz(), None);
        let mut v2 = viz();
        v2.name = "viz_99".into();
        let q2 = Query::for_viz(&v2, None);
        assert_eq!(q1.fingerprint(), q2.fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_filters() {
        let q1 = Query::for_viz(&viz(), Some(range("distance", 0.0, 500.0)));
        let q2 = Query::for_viz(&viz(), Some(range("distance", 0.0, 600.0)));
        let q3 = Query::for_viz(&viz(), None);
        assert_ne!(q1.fingerprint(), q2.fingerprint());
        assert_ne!(q1.fingerprint(), q3.fingerprint());
    }

    #[test]
    fn canonical_key_is_memoized_and_shared() {
        let q = Query::for_viz(&viz(), Some(range("distance", 0.0, 500.0)));
        let a = q.canonical_key();
        let b = q.canonical_key();
        assert!(Arc::ptr_eq(&a, &b), "second read shares the memo");
    }

    #[test]
    fn clone_resets_the_key_memo() {
        let q1 = Query::for_viz(&viz(), None);
        let k1 = q1.canonical_key();
        // Clone *after* the original's key was computed, then mutate the
        // clone — the speculative-query pattern. The clone must produce a
        // fresh key, not the original's.
        let mut q2 = q1.clone();
        q2.set_filter(Some(range("distance", 0.0, 500.0)));
        let k2 = q2.canonical_key();
        assert_ne!(k1, k2);
        assert_eq!(q1.canonical_key(), k1);
    }

    #[test]
    fn mutation_after_key_read_yields_the_fresh_key() {
        // Regression: queries are composed in place after construction (the
        // driver resolves count-binnings, the progressive engine composes
        // speculative filters). A canonical key read *before* such a
        // mutation must not survive it — a stale memo here poisons every
        // fingerprint-keyed cache downstream. With private fields, every
        // mutation path runs through these invalidating setters.
        let mut q = Query::for_viz(&viz(), None);
        let stale_key = q.canonical_key();
        let stale_fp = q.fingerprint();

        q.compose_filter(range("distance", 0.0, 500.0));
        let fresh = Query::for_viz(&viz(), Some(range("distance", 0.0, 500.0)));
        assert_ne!(q.canonical_key(), stale_key, "memo invalidated");
        assert_ne!(q.fingerprint(), stale_fp);
        assert_eq!(q.canonical_key(), fresh.canonical_key());
        assert_eq!(q.fingerprint(), fresh.fingerprint());

        // set_filter and set_bin invalidate too.
        let _ = q.canonical_key();
        q.set_filter(None);
        assert_eq!(q.canonical_key(), stale_key, "back to the unfiltered key");
        let _ = q.canonical_key();
        q.set_bin(
            0,
            BinDef::Width {
                dimension: "dep_delay".into(),
                width: 5.0,
                anchor: 0.0,
            },
        );
        assert_ne!(q.canonical_key(), stale_key);

        // Renaming the viz never touches the memo — the name is
        // deliberately not part of the key.
        let before = q.canonical_key();
        q.set_viz_name("renamed");
        assert_eq!(q.viz_name(), "renamed");
        assert!(Arc::ptr_eq(&before, &q.canonical_key()));
    }

    #[test]
    fn referenced_columns_cover_all_parts() {
        let q = Query::for_viz(&viz(), Some(range("distance", 0.0, 500.0)));
        let cols = q.referenced_columns();
        assert!(cols.contains(&"carrier"));
        assert!(cols.contains(&"dep_delay"));
        assert!(cols.contains(&"distance"));
    }

    #[test]
    fn specificity_counts_predicates() {
        let f = range("a", 0.0, 1.0).and(range("b", 0.0, 1.0));
        let q = Query::for_viz(&viz(), Some(f));
        assert_eq!(q.filter_specificity(), 2);
        assert_eq!(Query::for_viz(&viz(), None).filter_specificity(), 0);
    }

    #[test]
    fn query_serde_roundtrip() {
        let q = Query::for_viz(&viz(), Some(range("distance", 0.0, 500.0)));
        let js = serde_json::to_string(&q).unwrap();
        let back: Query = serde_json::from_str(&js).unwrap();
        assert_eq!(q, back);
        assert_eq!(q.canonical_key(), back.canonical_key());
    }
}
