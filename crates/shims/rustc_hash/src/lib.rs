//! In-repo shim for the `rustc_hash` crate: the Fx multiplicative hasher and
//! the `FxHashMap` / `FxHashSet` aliases built on it.
//!
//! The container this workspace builds in has no crates.io access, so the
//! few external crates the codebase uses are provided as minimal shims under
//! `crates/shims/`. This one implements the classic Firefox hash: fast,
//! non-cryptographic, ideal for the small integer/fingerprint keys the
//! engines hash on hot paths.

use std::hash::{BuildHasherDefault, Hasher};

/// A [`std::collections::HashMap`] keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A [`std::collections::HashSet`] keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// [`BuildHasherDefault`] over [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx multiplicative hasher (rotate, xor, multiply per word).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "a");
        m.insert(2, "b");
        assert_eq!(m.get(&1), Some(&"a"));
        let s: FxHashSet<u32> = [1, 2, 2, 3].into_iter().collect();
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn hashing_is_deterministic() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"hello world");
        b.write(b"hello world");
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(b"hello worle");
        assert_ne!(a.finish(), c.finish());
    }
}
