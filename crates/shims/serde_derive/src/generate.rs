//! Code generation for the derive shim: [`crate::Item`] → impl source text.

use crate::{
    apply_rename_all, is_option_type, DefaultAttr, Field, Fields, Item, ItemKind, Variant,
};
use std::fmt::Write;

/// The serialized key of a named field.
fn field_key(f: &Field) -> String {
    f.attrs.rename.clone().unwrap_or_else(|| f.name.clone())
}

/// The serialized name of a variant (`rename` wins over `rename_all`).
fn variant_name(item: &Item, v: &Variant) -> String {
    if let Some(r) = &v.rename {
        return r.clone();
    }
    match &item.attrs.rename_all {
        Some(rule) => apply_rename_all(rule, &v.name),
        None => v.name.clone(),
    }
}

/// Statements serializing named fields into a `Map` binding named `__obj`.
/// `expr_of` yields a `&T`-typed expression for each field.
fn ser_named_fields(fields: &[Field], expr_of: &dyn Fn(&Field) -> String) -> String {
    let mut out = String::new();
    for f in fields {
        let key = field_key(f);
        let access = expr_of(f);
        if f.attrs.flatten {
            let _ = write!(
                out,
                "match ::serde::Serialize::to_json({access}) {{ \
                   ::serde::Value::Object(__flat) => {{ \
                     for (__k, __val) in __flat.into_iter() {{ __obj.insert(__k, __val); }} \
                   }} \
                   __other => {{ __obj.insert({key:?}.to_string(), __other); }} \
                 }} "
            );
            continue;
        }
        let insert = match &f.attrs.with {
            Some(with) => {
                format!("__obj.insert({key:?}.to_string(), {with}::to_json({access}));")
            }
            None => {
                format!("__obj.insert({key:?}.to_string(), ::serde::Serialize::to_json({access}));")
            }
        };
        match &f.attrs.skip_serializing_if {
            Some(skip) => {
                let _ = write!(out, "if !{skip}({access}) {{ {insert} }} ");
            }
            None => {
                let _ = write!(out, "{insert} ");
            }
        }
    }
    out
}

/// A struct-literal body (`field: <parse expr>, ...`) deserializing named
/// fields out of a `&Map` binding named `__obj` (with `__v` the full value,
/// for `flatten`).
fn de_named_fields(fields: &[Field], ctx: &str) -> String {
    let mut out = String::new();
    for f in fields {
        let key = field_key(f);
        let name = &f.name;
        let ty = &f.ty;
        if f.attrs.flatten {
            let _ = write!(
                out,
                "{name}: <{ty} as ::serde::Deserialize>::from_json(__v)?, "
            );
            continue;
        }
        if let Some(with) = &f.attrs.with {
            let _ = write!(
                out,
                "{name}: {with}::from_json(__obj.get({key:?}).unwrap_or(&::serde::Value::Null))?, "
            );
            continue;
        }
        let missing = match &f.attrs.default {
            Some(DefaultAttr::Std) => "::std::default::Default::default()".to_string(),
            Some(DefaultAttr::Path(path)) => format!("{path}()"),
            None if is_option_type(ty) => "::std::option::Option::None".to_string(),
            None => format!(
                "return ::std::result::Result::Err(::serde::DeError::missing({key:?}, {ctx:?}))"
            ),
        };
        let _ = write!(
            out,
            "{name}: match __obj.get({key:?}) {{ \
               ::std::option::Option::Some(__x) => <{ty} as ::serde::Deserialize>::from_json(__x)?, \
               ::std::option::Option::None => {missing}, \
             }}, "
        );
    }
    out
}

/// An expression serializing one variant's payload (no tag), given the
/// bindings introduced by [`variant_pattern`].
fn ser_variant_payload(fields: &Fields) -> String {
    match fields {
        Fields::Unit => "::serde::Value::Null".to_string(),
        Fields::Tuple(types) if types.len() == 1 => "::serde::Serialize::to_json(__f0)".to_string(),
        Fields::Tuple(types) => {
            let items: Vec<String> = (0..types.len())
                .map(|i| format!("::serde::Serialize::to_json(__f{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Fields::Named(fields) => {
            let body = ser_named_fields(fields, &|f| f.name.clone());
            format!(
                "{{ let mut __obj = ::serde::Map::new(); {body} ::serde::Value::Object(__obj) }}"
            )
        }
    }
}

/// The match pattern binding a variant's fields (`__f0`… for tuples, field
/// names for named fields).
fn variant_pattern(enum_name: &str, v: &Variant) -> String {
    match &v.fields {
        Fields::Unit => format!("{enum_name}::{}", v.name),
        Fields::Tuple(types) => {
            let binds: Vec<String> = (0..types.len()).map(|i| format!("__f{i}")).collect();
            format!("{enum_name}::{}({})", v.name, binds.join(", "))
        }
        Fields::Named(fields) => {
            let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
            format!("{enum_name}::{} {{ {} }}", v.name, binds.join(", "))
        }
    }
}

/// An expression (`(|| -> Result<Self, DeError> { .. })()`) deserializing one
/// variant's payload from the value expression `src`.
fn de_variant_payload(enum_name: &str, v: &Variant, src: &str, ctx: &str) -> String {
    let vname = &v.name;
    let body = match &v.fields {
        Fields::Unit => format!("::std::result::Result::Ok({enum_name}::{vname})"),
        Fields::Tuple(types) if types.len() == 1 => {
            let ty = &types[0];
            format!(
                "::std::result::Result::Ok({enum_name}::{vname}(\
                   <{ty} as ::serde::Deserialize>::from_json({src})?))"
            )
        }
        Fields::Tuple(types) => {
            let mut parse = String::new();
            for (i, ty) in types.iter().enumerate() {
                let _ = write!(
                    parse,
                    "<{ty} as ::serde::Deserialize>::from_json(&__arr[{i}])?, "
                );
            }
            let n = types.len();
            format!(
                "{{ let __arr = {src}.as_array().ok_or_else(|| \
                     ::serde::DeError::expected(\"array\", {ctx:?}))?; \
                   if __arr.len() != {n} {{ \
                     return ::std::result::Result::Err(::serde::DeError::expected(\
                       \"{n}-element array\", {ctx:?})); }} \
                   ::std::result::Result::Ok({enum_name}::{vname}({parse})) }}"
            )
        }
        Fields::Named(fields) => {
            let parse = de_named_fields(fields, ctx);
            format!(
                "{{ let __v = {src}; \
                   let __obj = __v.as_object().ok_or_else(|| \
                     ::serde::DeError::expected(\"object\", {ctx:?}))?; \
                   ::std::result::Result::Ok({enum_name}::{vname} {{ {parse} }}) }}"
            )
        }
    };
    format!("(|| -> ::std::result::Result<{enum_name}, ::serde::DeError> {{ {body} }})()")
}

pub(crate) fn serialize_impl(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Fields::Named(fields)) => {
            let stmts = ser_named_fields(fields, &|f| format!("(&self.{})", f.name));
            format!("let mut __obj = ::serde::Map::new(); {stmts} ::serde::Value::Object(__obj)")
        }
        ItemKind::Struct(Fields::Tuple(types)) if types.len() == 1 => {
            "::serde::Serialize::to_json(&self.0)".to_string()
        }
        ItemKind::Struct(Fields::Tuple(types)) => {
            let items: Vec<String> = (0..types.len())
                .map(|i| format!("::serde::Serialize::to_json(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        ItemKind::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        ItemKind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let pattern = variant_pattern(name, v);
                let vname = variant_name(item, v);
                let payload = ser_variant_payload(&v.fields);
                let expr = if item.attrs.untagged {
                    payload
                } else if let (Some(tag), Some(content)) = (&item.attrs.tag, &item.attrs.content) {
                    // Adjacently tagged.
                    match &v.fields {
                        Fields::Unit => format!(
                            "{{ let mut __m = ::serde::Map::new(); \
                               __m.insert({tag:?}.to_string(), \
                                 ::serde::Value::String({vname:?}.to_string())); \
                               ::serde::Value::Object(__m) }}"
                        ),
                        _ => format!(
                            "{{ let mut __m = ::serde::Map::new(); \
                               __m.insert({tag:?}.to_string(), \
                                 ::serde::Value::String({vname:?}.to_string())); \
                               __m.insert({content:?}.to_string(), {payload}); \
                               ::serde::Value::Object(__m) }}"
                        ),
                    }
                } else if let Some(tag) = &item.attrs.tag {
                    // Internally tagged.
                    match &v.fields {
                        Fields::Unit => format!(
                            "{{ let mut __m = ::serde::Map::new(); \
                               __m.insert({tag:?}.to_string(), \
                                 ::serde::Value::String({vname:?}.to_string())); \
                               ::serde::Value::Object(__m) }}"
                        ),
                        Fields::Named(fields) => {
                            let stmts = ser_named_fields(fields, &|f| f.name.clone());
                            format!(
                                "{{ let mut __obj = ::serde::Map::new(); \
                                   __obj.insert({tag:?}.to_string(), \
                                     ::serde::Value::String({vname:?}.to_string())); \
                                   {stmts} ::serde::Value::Object(__obj) }}"
                            )
                        }
                        Fields::Tuple(_) => panic!(
                            "serde shim: internally tagged tuple variants are unsupported \
                             ({name}::{})",
                            v.name
                        ),
                    }
                } else {
                    // Externally tagged (default).
                    match &v.fields {
                        Fields::Unit => {
                            format!("::serde::Value::String({vname:?}.to_string())")
                        }
                        _ => format!(
                            "{{ let mut __m = ::serde::Map::new(); \
                               __m.insert({vname:?}.to_string(), {payload}); \
                               ::serde::Value::Object(__m) }}"
                        ),
                    }
                };
                let _ = write!(arms, "{pattern} => {expr}, ");
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{ \
           fn to_json(&self) -> ::serde::Value {{ {body} }} \
         }}"
    )
}

pub(crate) fn deserialize_impl(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Fields::Named(fields)) => {
            let parse = de_named_fields(fields, name);
            format!(
                "let __obj = __v.as_object().ok_or_else(|| \
                   ::serde::DeError::expected(\"object\", {name:?}))?; \
                 ::std::result::Result::Ok({name} {{ {parse} }})"
            )
        }
        ItemKind::Struct(Fields::Tuple(types)) if types.len() == 1 => {
            let ty = &types[0];
            format!(
                "::std::result::Result::Ok({name}(\
                   <{ty} as ::serde::Deserialize>::from_json(__v)?))"
            )
        }
        ItemKind::Struct(Fields::Tuple(types)) => {
            let mut parse = String::new();
            for (i, ty) in types.iter().enumerate() {
                let _ = write!(
                    parse,
                    "<{ty} as ::serde::Deserialize>::from_json(&__arr[{i}])?, "
                );
            }
            let n = types.len();
            format!(
                "let __arr = __v.as_array().ok_or_else(|| \
                   ::serde::DeError::expected(\"array\", {name:?}))?; \
                 if __arr.len() != {n} {{ \
                   return ::std::result::Result::Err(::serde::DeError::expected(\
                     \"{n}-element array\", {name:?})); }} \
                 ::std::result::Result::Ok({name}({parse}))"
            )
        }
        ItemKind::Struct(Fields::Unit) => {
            format!("::std::result::Result::Ok({name})")
        }
        ItemKind::Enum(variants) => gen_enum_deserialize(item, variants),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{ \
           fn from_json(__v: &::serde::Value) \
             -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }} \
         }}"
    )
}

fn gen_enum_deserialize(item: &Item, variants: &[Variant]) -> String {
    let name = &item.name;
    if item.attrs.untagged {
        let mut attempts = String::new();
        for v in variants {
            let parse = de_variant_payload(name, v, "__v", name);
            let _ = write!(
                attempts,
                "if let ::std::result::Result::Ok(__x) = {parse} {{ \
                   return ::std::result::Result::Ok(__x); }} "
            );
        }
        return format!(
            "{attempts} ::std::result::Result::Err(::serde::DeError::custom(\
               format!(\"no untagged variant of {name} matched\")))"
        );
    }
    if let (Some(tag), Some(content)) = (&item.attrs.tag, &item.attrs.content) {
        // Adjacently tagged.
        let mut arms = String::new();
        for v in variants {
            let vname = variant_name(item, v);
            let ctx = format!("{name}::{}", v.name);
            let parse = de_variant_payload(name, v, "__content", &ctx);
            let _ = write!(arms, "{vname:?} => {parse}, ");
        }
        return format!(
            "let __obj = __v.as_object().ok_or_else(|| \
               ::serde::DeError::expected(\"object\", {name:?}))?; \
             let __tag = __obj.get({tag:?}).and_then(|t| t.as_str()).ok_or_else(|| \
               ::serde::DeError::missing({tag:?}, {name:?}))?; \
             let __content = __obj.get({content:?}).unwrap_or(&::serde::Value::Null); \
             match __tag {{ {arms} __other => ::std::result::Result::Err(\
               ::serde::DeError::custom(format!(\
                 \"unknown {name} variant {{__other}}\"))), }}"
        );
    }
    if let Some(tag) = &item.attrs.tag {
        // Internally tagged: fields come from the same object.
        let mut arms = String::new();
        for v in variants {
            let vname = variant_name(item, v);
            let ctx = format!("{name}::{}", v.name);
            let parse = match &v.fields {
                Fields::Unit => format!("::std::result::Result::Ok({name}::{})", v.name),
                Fields::Named(fields) => {
                    let body = de_named_fields(fields, &ctx);
                    let variant = &v.name;
                    format!("::std::result::Result::Ok({name}::{variant} {{ {body} }})")
                }
                Fields::Tuple(_) => {
                    panic!("serde shim: internally tagged tuple variants are unsupported ({ctx})")
                }
            };
            let _ = write!(arms, "{vname:?} => {parse}, ");
        }
        return format!(
            "let __obj = __v.as_object().ok_or_else(|| \
               ::serde::DeError::expected(\"object\", {name:?}))?; \
             let __tag = __obj.get({tag:?}).and_then(|t| t.as_str()).ok_or_else(|| \
               ::serde::DeError::missing({tag:?}, {name:?}))?; \
             match __tag {{ {arms} __other => ::std::result::Result::Err(\
               ::serde::DeError::custom(format!(\
                 \"unknown {name} variant {{__other}}\"))), }}"
        );
    }
    // Externally tagged (default).
    let mut unit_arms = String::new();
    let mut keyed_arms = String::new();
    for v in variants {
        let vname = variant_name(item, v);
        let ctx = format!("{name}::{}", v.name);
        match &v.fields {
            Fields::Unit => {
                let variant = &v.name;
                let _ = write!(
                    unit_arms,
                    "{vname:?} => return ::std::result::Result::Ok({name}::{variant}), "
                );
            }
            _ => {
                let parse = de_variant_payload(name, v, "__inner", &ctx);
                let _ = write!(keyed_arms, "{vname:?} => {parse}, ");
            }
        }
    }
    let object_path = if keyed_arms.is_empty() {
        format!("::std::result::Result::Err(::serde::DeError::expected(\"string\", {name:?}))")
    } else {
        format!(
            "let __obj = __v.as_object().ok_or_else(|| \
               ::serde::DeError::expected(\"string or object\", {name:?}))?; \
             let (__key, __inner) = __obj.iter().next().ok_or_else(|| \
               ::serde::DeError::expected(\"single-key object\", {name:?}))?; \
             match __key.as_str() {{ {keyed_arms} __other => ::std::result::Result::Err(\
               ::serde::DeError::custom(format!(\
                 \"unknown {name} variant {{__other}}\"))), }}"
        )
    };
    let string_path = if unit_arms.is_empty() {
        String::new()
    } else {
        format!(
            "if let ::std::option::Option::Some(__s) = __v.as_str() {{ \
               match __s {{ {unit_arms} __other => return ::std::result::Result::Err(\
                 ::serde::DeError::custom(format!(\
                   \"unknown {name} variant {{__other}}\"))), }} \
             }} "
        )
    };
    format!("{string_path}{object_path}")
}
