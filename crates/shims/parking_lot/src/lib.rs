//! In-repo shim for the `parking_lot` crate (see `crates/shims/`): the
//! non-poisoning `Mutex`/`RwLock` API, backed by `std::sync`. Poisoned locks
//! are recovered transparently, matching parking_lot's panic-transparent
//! behaviour.

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
