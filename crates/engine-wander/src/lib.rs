//! The XDB-class engine: **wander-join online aggregation** with a blocking
//! fallback (paper §5, approXimateDB/XDB, paper ref 26).
//!
//! Behavioural contract, mirroring the paper's findings:
//!
//! - **Online aggregation for COUNT and SUM, single aggregate only**: the
//!   paper notes XDB "supports online aggregation for COUNT and SUM, but
//!   does not provide online support for AVG nor for multiple aggregates in
//!   a single query". Eligible queries sample rows (random walks) and can
//!   report estimates at every *report interval*.
//! - **Blocking fallback**: ineligible queries run as regular PostgreSQL
//!   queries — a row-store scan whose cost is proportional to the full
//!   table width. On the benchmark's data sizes these always blow the time
//!   requirement, which is why the paper measured a consistent ~66%
//!   violation rate at every TR.
//! - **Online joins** (wander join): on star schemas, walks start from a
//!   uniformly random fact row and follow foreign keys into the dimensions,
//!   so per-walk cost grows only with the number of join hops — TR
//!   violations stay flat as normalized data grows (Exp 2/Figure 6e).
//! - **Report interval**: estimates can only be fetched at fixed intervals;
//!   a time requirement below the first interval is violated even by
//!   online-eligible queries.

use idebench_core::{
    AggFunc, CoreError, PrepStats, Query, QueryHandle, Settings, StepStatus, SystemAdapter,
};
use idebench_query::{ChunkedRun, CompiledPlan, SnapshotMode};
use idebench_storage::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::Arc;

/// Configuration of the wander-join engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WanderConfig {
    /// Row-store scan cost per column of the scanned table (blocking path
    /// reads full rows regardless of the referenced columns).
    pub cost_per_table_column: f64,
    /// Base cost per random walk (online path): one uniform row fetch.
    pub walk_cost_base: f64,
    /// Extra cost per foreign-key hop of a walk.
    pub walk_cost_per_join: f64,
    /// Extra cost per filter-matching walk (estimator update).
    pub walk_match_cost: f64,
    /// Interval (in virtual seconds) at which online results become
    /// fetchable ("report interval" in XDB); converted to work units at
    /// prepare time.
    pub report_interval_s: f64,
    /// Load cost per row — the paper measured 130 min for 500M rows
    /// (bulk load + primary-key build), ~7× MonetDB's.
    pub load_units_per_row: f64,
}

impl Default for WanderConfig {
    fn default() -> Self {
        WanderConfig {
            cost_per_table_column: 0.27,
            walk_cost_base: 1.2,
            walk_cost_per_join: 0.6,
            walk_match_cost: 0.3,
            report_interval_s: 0.35,
            load_units_per_row: 7.0,
        }
    }
}

impl WanderConfig {
    /// Cost per fact row on the blocking (row-store) path.
    pub fn blocking_row_cost(&self, plan: &CompiledPlan) -> f64 {
        self.cost_per_table_column * plan.fact_arity() as f64
    }

    /// Cost per sampled row (walk) on the online path.
    pub fn walk_cost(&self, plan: &CompiledPlan) -> f64 {
        self.walk_cost_base + self.walk_cost_per_join * plan.joined_columns() as f64
    }
}

/// Whether XDB can run this query with online aggregation.
pub fn online_eligible(query: &Query) -> bool {
    query.aggregates().len() == 1
        && matches!(query.aggregates()[0].func, AggFunc::Count | AggFunc::Sum)
}

/// The wander-join adapter ("wander" in reports).
pub struct WanderAdapter {
    config: WanderConfig,
    dataset: Option<Dataset>,
    shuffle: Option<Arc<Vec<u32>>>,
    z: f64,
    report_interval_units: u64,
    prep: PrepStats,
    /// Scan worker-pool size, taken from the settings at prepare time.
    workers: usize,
}

impl WanderAdapter {
    /// Creates the adapter with a custom configuration.
    pub fn new(config: WanderConfig) -> Self {
        WanderAdapter {
            config,
            dataset: None,
            shuffle: None,
            z: 1.96,
            report_interval_units: 350_000,
            prep: PrepStats::default(),
            workers: 1,
        }
    }

    /// Creates the adapter with default calibration.
    pub fn with_defaults() -> Self {
        Self::new(WanderConfig::default())
    }

    /// The active configuration.
    pub fn config(&self) -> &WanderConfig {
        &self.config
    }

    /// Hosts this adapter as a shared [`idebench_core::EngineService`]:
    /// one engine instance serves every session (the shuffle order and the
    /// loaded dataset are shared fleet-wide; submission is stateless).
    pub fn into_service(self) -> idebench_core::ServiceCore {
        idebench_core::ServiceCore::shared_adapter(self)
    }
}

impl SystemAdapter for WanderAdapter {
    fn name(&self) -> &str {
        "wander"
    }

    fn prepare(&mut self, dataset: &Dataset, settings: &Settings) -> Result<PrepStats, CoreError> {
        self.workers = settings.effective_workers();
        if let Some(existing) = &self.dataset {
            if existing.ptr_eq(dataset) {
                self.z = settings.z_value();
                self.report_interval_units =
                    settings.seconds_to_units(self.config.report_interval_s);
                return Ok(self.prep);
            }
        }
        let fact_rows = dataset.fact_rows();
        let total_rows = match dataset {
            Dataset::Denormalized(t) => t.num_rows(),
            Dataset::Star(s) => s.total_rows(),
        };
        // Column min/max stats power the planner's dense bucketed binning;
        // warming them here keeps the O(rows) scan out of submit().
        dataset.warm_numeric_stats();
        let mut order: Vec<u32> = (0..fact_rows as u32).collect();
        let mut rng = StdRng::seed_from_u64(settings.seed ^ 0x0bad_5eed);
        order.shuffle(&mut rng);
        self.shuffle = Some(Arc::new(order));
        self.z = settings.z_value();
        self.report_interval_units = settings.seconds_to_units(self.config.report_interval_s);
        self.prep = PrepStats {
            load_units: (total_rows as f64 * self.config.load_units_per_row).round() as u64,
            preprocess_units: 0,
            warmup_units: 0,
        };
        self.dataset = Some(dataset.clone());
        Ok(self.prep)
    }

    fn submit(&mut self, query: &Query) -> Box<dyn QueryHandle> {
        let dataset = self
            .dataset
            .as_ref()
            .expect("prepare() must run before submit()")
            .clone();
        // One compilation serves both the cost model and the entire scan.
        let plan = CompiledPlan::compile(&dataset, query)
            .expect("driver-validated query binds against the dataset");
        let population = plan.num_rows() as u64;
        if online_eligible(query) {
            let cost = self.config.walk_cost(&plan);
            let mut run = ChunkedRun::from_plan(
                plan,
                self.shuffle.clone(),
                SnapshotMode::Estimate {
                    z: self.z,
                    population,
                },
            );
            run.set_row_cost(cost);
            run.set_match_cost(self.config.walk_match_cost);
            run.set_workers(self.workers);
            Box::new(WanderHandle {
                run,
                consumed: 0,
                report_interval: self.report_interval_units,
            })
        } else {
            let cost = self.config.blocking_row_cost(&plan);
            let mut run = ChunkedRun::from_plan(plan, None, SnapshotMode::Exact);
            run.set_row_cost(cost);
            run.set_workers(self.workers);
            Box::new(BlockingHandle { run })
        }
    }
}

/// Online wander-join execution: estimate snapshots gated by the report
/// interval.
struct WanderHandle {
    run: ChunkedRun,
    consumed: u64,
    report_interval: u64,
}

impl QueryHandle for WanderHandle {
    fn step(&mut self, granted: u64) -> StepStatus {
        let units = self.run.advance(granted);
        self.consumed += units;
        if self.run.is_done() {
            StepStatus::Done { units }
        } else {
            StepStatus::Running { units }
        }
    }

    fn snapshot(&self) -> Option<idebench_core::AggResult> {
        if self.run.is_done() {
            return self.run.snapshot();
        }
        if self.consumed < self.report_interval {
            return None; // first report not due yet
        }
        self.run.snapshot()
    }

    fn is_done(&self) -> bool {
        self.run.is_done()
    }
}

/// Blocking PostgreSQL-style fallback for unsupported online queries.
struct BlockingHandle {
    run: ChunkedRun,
}

impl QueryHandle for BlockingHandle {
    fn step(&mut self, granted: u64) -> StepStatus {
        let units = self.run.advance(granted);
        if self.run.is_done() {
            StepStatus::Done { units }
        } else {
            StepStatus::Running { units }
        }
    }

    fn snapshot(&self) -> Option<idebench_core::AggResult> {
        self.run.snapshot()
    }

    fn is_done(&self) -> bool {
        self.run.is_done()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idebench_core::spec::{AggregateSpec, BinDef};
    use idebench_core::VizSpec;
    use idebench_query::execute_exact;
    use idebench_storage::{DataType, DimensionSpec, StarSchema, TableBuilder, Value};

    fn dataset(n: usize) -> Dataset {
        let mut b = TableBuilder::with_fields(
            "flights",
            &[
                ("carrier", DataType::Nominal),
                ("dep_delay", DataType::Float),
                ("distance", DataType::Float),
            ],
        );
        for i in 0..n {
            let c = if i % 3 == 0 { "AA" } else { "DL" };
            b.push_row(&[
                c.into(),
                ((i % 61) as f64).into(),
                ((i % 997) as f64).into(),
            ])
            .unwrap();
        }
        Dataset::Denormalized(Arc::new(b.finish()))
    }

    fn star(n: usize) -> Dataset {
        let mut f = TableBuilder::with_fields(
            "flights",
            &[
                ("dep_delay", DataType::Float),
                ("carrier_key", DataType::Int),
            ],
        );
        for i in 0..n {
            f.push_row(&[((i % 61) as f64).into(), ((i % 2) as i64).into()])
                .unwrap();
        }
        let mut d = TableBuilder::with_fields("carriers", &[("carrier", DataType::Nominal)]);
        d.push_row(&[Value::Str("AA".into())]).unwrap();
        d.push_row(&[Value::Str("DL".into())]).unwrap();
        Dataset::Star(Arc::new(
            StarSchema::new(
                Arc::new(f.finish()),
                vec![(
                    DimensionSpec::new("carriers", "carrier_key", vec!["carrier".into()]),
                    Arc::new(d.finish()),
                )],
            )
            .unwrap(),
        ))
    }

    fn count_query() -> Query {
        let spec = VizSpec::new(
            "v",
            "flights",
            vec![BinDef::Nominal {
                dimension: "carrier".into(),
            }],
            vec![AggregateSpec::count()],
        );
        Query::for_viz(&spec, None)
    }

    fn avg_query() -> Query {
        let spec = VizSpec::new(
            "v",
            "flights",
            vec![BinDef::Nominal {
                dimension: "carrier".into(),
            }],
            vec![AggregateSpec::over(AggFunc::Avg, "dep_delay")],
        );
        Query::for_viz(&spec, None)
    }

    fn multi_query() -> Query {
        let spec = VizSpec::new(
            "v",
            "flights",
            vec![BinDef::Nominal {
                dimension: "carrier".into(),
            }],
            vec![
                AggregateSpec::count(),
                AggregateSpec::over(AggFunc::Sum, "dep_delay"),
            ],
        );
        Query::for_viz(&spec, None)
    }

    #[test]
    fn eligibility_matches_paper_constraints() {
        assert!(online_eligible(&count_query()));
        assert!(!online_eligible(&avg_query()));
        assert!(!online_eligible(&multi_query()));
        let sum_spec = VizSpec::new(
            "v",
            "flights",
            vec![BinDef::Nominal {
                dimension: "carrier".into(),
            }],
            vec![AggregateSpec::over(AggFunc::Sum, "dep_delay")],
        );
        assert!(online_eligible(&Query::for_viz(&sum_spec, None)));
    }

    #[test]
    fn online_query_reports_after_interval() {
        let ds = dataset(500_000);
        let mut adapter = WanderAdapter::with_defaults();
        adapter.prepare(&ds, &Settings::default()).unwrap();
        let mut h = adapter.submit(&count_query());
        h.step(100_000);
        assert!(h.snapshot().is_none(), "before first report interval");
        h.step(300_000);
        let snap = h.snapshot().expect("first report is due");
        assert!(!snap.exact, "walks cover only a prefix of the data");
        let total: f64 = snap.bins.values().map(|b| b.values[0]).sum();
        assert!(
            (total - 500_000.0).abs() / 500_000.0 < 0.05,
            "total {total}"
        );
    }

    #[test]
    fn blocking_fallback_for_avg() {
        let ds = dataset(5_000);
        let mut adapter = WanderAdapter::with_defaults();
        adapter.prepare(&ds, &Settings::default()).unwrap();
        let mut h = adapter.submit(&avg_query());
        h.step(1_000);
        assert!(h.snapshot().is_none());
        while !h.step(100_000).is_done() {}
        let snap = h.snapshot().unwrap();
        assert!(snap.exact);
        assert_eq!(snap, execute_exact(&ds, &avg_query()).unwrap());
    }

    #[test]
    fn blocking_cost_scales_with_table_width() {
        let ds = dataset(10);
        let q = avg_query();
        let plan = CompiledPlan::compile(&ds, &q).unwrap();
        let cfg = WanderConfig::default();
        // 3 columns × 0.27
        assert!((cfg.blocking_row_cost(&plan) - 0.81).abs() < 1e-12);
    }

    #[test]
    fn online_join_walks_cost_per_hop() {
        let ds = star(100);
        let spec = VizSpec::new(
            "v",
            "flights",
            vec![BinDef::Nominal {
                dimension: "carrier".into(),
            }],
            vec![AggregateSpec::count()],
        );
        let q = Query::for_viz(&spec, None);
        let plan = CompiledPlan::compile(&ds, &q).unwrap();
        let cfg = WanderConfig::default();
        assert!((cfg.walk_cost(&plan) - 1.8).abs() < 1e-12);
    }

    #[test]
    fn online_join_estimates_match_truth_shape() {
        let ds = star(50_000);
        let spec = VizSpec::new(
            "v",
            "flights",
            vec![BinDef::Nominal {
                dimension: "carrier".into(),
            }],
            vec![AggregateSpec::count()],
        );
        let q = Query::for_viz(&spec, None);
        let mut adapter = WanderAdapter::with_defaults();
        adapter.prepare(&ds, &Settings::default()).unwrap();
        let mut h = adapter.submit(&q);
        h.step(400_000);
        let snap = h.snapshot().expect("report due");
        let gt = execute_exact(&ds, &q).unwrap();
        for (key, stats) in &gt.bins {
            let est = snap.value(key, 0).unwrap_or(0.0);
            let rel = (est - stats.values[0]).abs() / stats.values[0];
            assert!(rel < 0.1, "bin {key:?}: est {est} vs {}", stats.values[0]);
        }
    }

    #[test]
    fn completed_online_query_is_exact() {
        let ds = dataset(2_000);
        let mut adapter = WanderAdapter::with_defaults();
        adapter.prepare(&ds, &Settings::default()).unwrap();
        let mut h = adapter.submit(&count_query());
        while !h.step(100_000).is_done() {}
        let snap = h.snapshot().unwrap();
        assert!(snap.exact);
        assert_eq!(snap, execute_exact(&ds, &count_query()).unwrap());
    }

    #[test]
    fn prepare_costs_reflect_expensive_load() {
        let ds = dataset(1_000);
        let mut adapter = WanderAdapter::with_defaults();
        let prep = adapter.prepare(&ds, &Settings::default()).unwrap();
        assert_eq!(prep.load_units, 7_000);
        let again = adapter.prepare(&ds, &Settings::default()).unwrap();
        assert_eq!(prep, again);
    }

    #[test]
    fn shared_service_serves_multiple_sessions() {
        use idebench_core::{EngineService, QueryOptions};
        let ds = dataset(2_000);
        let svc = WanderAdapter::with_defaults().into_service();
        svc.open_session(0, &ds, &Settings::default()).unwrap();
        svc.open_session(1, &ds, &Settings::default()).unwrap();
        let expected = execute_exact(&ds, &count_query()).unwrap();
        for session in [0u64, 1] {
            let t = svc.submit(
                &count_query(),
                QueryOptions::for_session(session).with_step_quantum(100_000),
            );
            assert!(t.drive().is_done());
            assert_eq!(t.snapshot().unwrap(), expected);
        }
    }
}
