//! The benchmark configuration file format and the full-run executor —
//! the equivalent of the paper's "command line application configured to
//! load and simulate workflows" (§4.4).
//!
//! A configuration names the dataset, the systems under test, the settings
//! grid (time requirements × think times), and the workload — either
//! generated on the fly or loaded from a directory of workflow JSON files.

use crate::{flights_dataset, run_workflows, service_by_name, star_dataset};
use idebench_core::{CoreError, DetailedReport, Settings, SummaryReport};
use idebench_query::CachedGroundTruth;
use idebench_workflow::{Workflow, WorkflowGenerator, WorkflowType};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Dataset section of a benchmark configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Rows of the de-normalized fact table.
    pub rows: usize,
    /// RNG seed for the data generator.
    #[serde(default = "default_seed")]
    pub seed: u64,
    /// Whether to normalize into the flights star schema (Exp 2).
    #[serde(default)]
    pub normalized: bool,
}

fn default_seed() -> u64 {
    42
}

/// Workload section: generate workloads or load them from disk.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum WorkloadConfig {
    /// Generate `count` workflows of `interactions` steps for each type.
    Generate {
        /// Workflow types to generate (report rows are grouped by these).
        types: Vec<WorkflowType>,
        /// Workflows per type (the paper's default is 10).
        count: usize,
        /// Interactions per workflow.
        interactions: usize,
    },
    /// Load every `*.json` workflow from a directory.
    Dir {
        /// The directory holding workflow files.
        path: PathBuf,
    },
}

/// A full benchmark configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkConfig {
    /// Dataset to generate.
    pub dataset: DatasetConfig,
    /// Systems under test, by adapter name (see `adapter_by_name`).
    pub systems: Vec<String>,
    /// Time requirements to sweep, milliseconds.
    pub time_requirements_ms: Vec<u64>,
    /// Think time between interactions, milliseconds.
    #[serde(default = "default_think")]
    pub think_time_ms: u64,
    /// Confidence level for AQP margins.
    #[serde(default = "default_confidence")]
    pub confidence_level: f64,
    /// Virtual work rate, units per second.
    #[serde(default = "default_rate")]
    pub work_rate: f64,
    /// The workload.
    pub workload: WorkloadConfig,
}

fn default_think() -> u64 {
    1_000
}
fn default_confidence() -> f64 {
    0.95
}
fn default_rate() -> f64 {
    1e6
}

impl Default for BenchmarkConfig {
    /// The paper's default configuration, scaled to this reproduction's M
    /// size: all four main systems, the five default TRs, 10 workflows of
    /// each of the four types plus mixed.
    fn default() -> Self {
        BenchmarkConfig {
            dataset: DatasetConfig {
                rows: 5_000_000,
                seed: 42,
                normalized: false,
            },
            systems: crate::MAIN_SYSTEMS.iter().map(|s| s.to_string()).collect(),
            time_requirements_ms: Settings::DEFAULT_TIME_REQUIREMENTS_MS.to_vec(),
            think_time_ms: 1_000,
            confidence_level: 0.95,
            work_rate: 1e6,
            workload: WorkloadConfig::Generate {
                types: WorkflowType::ALL.to_vec(),
                count: 10,
                interactions: 18,
            },
        }
    }
}

/// The artifacts of a full benchmark run.
pub struct BenchmarkRun {
    /// Every evaluated query.
    pub detailed: DetailedReport,
    /// Aggregated per (system, TR).
    pub summary: SummaryReport,
    /// Aggregated per (system, TR, workflow type).
    pub summary_by_kind: SummaryReport,
}

impl BenchmarkConfig {
    /// Parses a configuration from JSON.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Serializes the configuration (e.g. to scaffold a template file).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("config serializes")
    }

    /// Loads a configuration file.
    pub fn load(path: &Path) -> Result<Self, CoreError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CoreError::Storage(format!("{}: {e}", path.display())))?;
        Self::from_json(&text).map_err(|e| CoreError::Storage(format!("{}: {e}", path.display())))
    }

    /// Materializes the workload.
    pub fn workflows(&self) -> Result<Vec<Workflow>, CoreError> {
        match &self.workload {
            WorkloadConfig::Generate {
                types,
                count,
                interactions,
            } => {
                let mut all = Vec::with_capacity(types.len() * count);
                for kind in types {
                    all.extend(
                        WorkflowGenerator::new(*kind, self.dataset.seed)
                            .generate_batch(*count, *interactions),
                    );
                }
                Ok(all)
            }
            WorkloadConfig::Dir { path } => idebench_workflow::store::load_batch(path)
                .map_err(|e| CoreError::Storage(e.to_string())),
        }
    }

    /// Executes the full configuration: every system × every TR over the
    /// whole workload, evaluated against a shared ground-truth cache.
    /// `progress` is called after each (system, TR) cell completes.
    pub fn execute(
        &self,
        mut progress: impl FnMut(&str, u64, usize),
    ) -> Result<BenchmarkRun, CoreError> {
        // Validate the roster before any expensive work.
        for system in &self.systems {
            if crate::try_adapter_by_name(system).is_none() {
                return Err(CoreError::Unsupported(format!(
                    "unknown system {system:?} in configuration"
                )));
            }
        }
        let denorm = flights_dataset(self.dataset.rows, self.dataset.seed);
        let dataset = if self.dataset.normalized {
            star_dataset(&denorm)
        } else {
            denorm
        };
        let workflows = self.workflows()?;
        // Pre-compute ground truth for the whole workload in parallel —
        // it is shared by every (system, TR) cell below.
        let interaction_slices: Vec<&[idebench_core::Interaction]> = workflows
            .iter()
            .map(|w| w.interactions.as_slice())
            .collect();
        let distinct = idebench_query::enumerate_workload_queries(&dataset, &interaction_slices)?;
        let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
        let mut gt = CachedGroundTruth::precompute(dataset.clone(), &distinct, threads);
        let mut parts = Vec::new();
        for &tr in &self.time_requirements_ms {
            for system in &self.systems {
                let mut settings = Settings::default()
                    .with_time_requirement_ms(tr)
                    .with_think_time_ms(self.think_time_ms)
                    .with_seed(self.dataset.seed)
                    .with_joins(self.dataset.normalized)
                    .with_execution(idebench_core::ExecutionMode::Virtual {
                        work_rate: self.work_rate,
                    });
                settings.confidence_level = self.confidence_level;
                let service = service_by_name(system);
                let report =
                    run_workflows(service.as_ref(), &dataset, &workflows, &settings, &mut gt)?;
                progress(system, tr, report.rows.len());
                parts.push(report);
            }
        }
        let detailed = DetailedReport::merged(parts);
        let summary = SummaryReport::from_detailed(&detailed);
        let summary_by_kind = SummaryReport::from_detailed_by_kind(&detailed);
        Ok(BenchmarkRun {
            detailed,
            summary,
            summary_by_kind,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper_defaults() {
        let c = BenchmarkConfig::default();
        assert_eq!(c.time_requirements_ms, vec![500, 1000, 3000, 5000, 10000]);
        assert_eq!(c.confidence_level, 0.95);
        assert_eq!(c.systems.len(), 4);
        match &c.workload {
            WorkloadConfig::Generate { types, count, .. } => {
                assert_eq!(types.len(), 5);
                assert_eq!(*count, 10);
            }
            other => panic!("unexpected workload {other:?}"),
        }
    }

    #[test]
    fn config_json_roundtrip() {
        let c = BenchmarkConfig::default();
        let back = BenchmarkConfig::from_json(&c.to_json()).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn minimal_json_uses_defaults() {
        let c = BenchmarkConfig::from_json(
            r#"{
                "dataset": { "rows": 1000 },
                "systems": ["exact"],
                "time_requirements_ms": [100],
                "workload": { "generate": { "types": ["mixed"], "count": 1, "interactions": 5 } }
            }"#,
        )
        .unwrap();
        assert_eq!(c.dataset.seed, 42);
        assert_eq!(c.think_time_ms, 1_000);
        assert_eq!(c.confidence_level, 0.95);
    }

    #[test]
    fn tiny_config_executes_end_to_end() {
        let c = BenchmarkConfig {
            dataset: DatasetConfig {
                rows: 5_000,
                seed: 7,
                normalized: false,
            },
            systems: vec!["exact".into(), "progressive".into()],
            time_requirements_ms: vec![50],
            think_time_ms: 10,
            confidence_level: 0.95,
            work_rate: 1e4,
            workload: WorkloadConfig::Generate {
                types: vec![WorkflowType::Mixed],
                count: 1,
                interactions: 6,
            },
        };
        let mut cells = 0;
        let run = c.execute(|_, _, _| cells += 1).unwrap();
        assert_eq!(cells, 2);
        assert!(!run.detailed.rows.is_empty());
        assert_eq!(run.summary.rows.len(), 2);
    }

    #[test]
    fn unknown_system_rejected_before_running() {
        let c = BenchmarkConfig {
            systems: vec!["warpdrive".into()],
            ..BenchmarkConfig::default()
        };
        let Err(err) = c.execute(|_, _, _| {}) else {
            panic!("unknown system must be rejected");
        };
        assert!(err.to_string().contains("warpdrive"));
    }

    #[test]
    fn workload_dir_roundtrip() {
        let dir = std::env::temp_dir().join(format!("idebench-cfg-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let batch = WorkflowGenerator::new(WorkflowType::Mixed, 3).generate_batch(2, 5);
        idebench_workflow::store::save_batch(&dir, &batch).unwrap();
        let c = BenchmarkConfig {
            workload: WorkloadConfig::Dir { path: dir.clone() },
            ..BenchmarkConfig::default()
        };
        assert_eq!(c.workflows().unwrap(), batch);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
