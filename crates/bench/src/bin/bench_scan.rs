//! Scan-throughput benchmark: emits `BENCH_scan.json` with rows/sec for the
//! vectorized execution core on the paper's canonical scan shapes, plus the
//! retained scalar reference path for the speedup ratio.

use idebench_core::spec::{AggFunc, AggregateSpec, BinDef};
use idebench_core::{FilterExpr, Predicate, Query, VizSpec};
use idebench_query::{execute_exact, execute_exact_scalar};
use idebench_storage::Dataset;
use std::sync::Arc;
use std::time::Instant;

const ROWS: usize = 500_000;

fn time_rows_per_sec(rows: usize, mut f: impl FnMut()) -> f64 {
    // Warm-up, then best of several measured repetitions.
    f();
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    rows as f64 / best
}

fn filtered_1d_nominal() -> Query {
    let spec = VizSpec::new(
        "bench",
        "flights",
        vec![BinDef::Nominal {
            dimension: "carrier".into(),
        }],
        vec![AggregateSpec::over(AggFunc::Avg, "dep_delay")],
    );
    Query::for_viz(
        &spec,
        Some(
            FilterExpr::Pred(Predicate::In {
                column: "carrier".into(),
                values: vec!["C00".into(), "C01".into(), "C02".into()],
            })
            .and(FilterExpr::Pred(Predicate::Range {
                column: "dep_delay".into(),
                min: 0.0,
                max: 60.0,
            })),
        ),
    )
}

fn exact_scan() -> Query {
    let spec = VizSpec::new(
        "bench",
        "flights",
        vec![BinDef::Nominal {
            dimension: "carrier".into(),
        }],
        vec![AggregateSpec::count()],
    );
    Query::for_viz(&spec, None)
}

fn binned_2d() -> Query {
    let spec = VizSpec::new(
        "bench",
        "flights",
        vec![
            BinDef::Width {
                dimension: "dep_delay".into(),
                width: 10.0,
                anchor: 0.0,
            },
            BinDef::Width {
                dimension: "arr_delay".into(),
                width: 10.0,
                anchor: 0.0,
            },
        ],
        vec![
            AggregateSpec::count(),
            AggregateSpec::over(AggFunc::Avg, "arr_delay"),
        ],
    );
    Query::for_viz(&spec, None)
}

fn main() {
    let ds = Dataset::Denormalized(Arc::new(idebench_datagen::flights::generate(ROWS, 42)));

    let cases: [(&str, Query); 3] = [
        ("exact_scan_1d_nominal_count", exact_scan()),
        ("filtered_scan_1d_nominal_avg", filtered_1d_nominal()),
        ("binned_2d_agg", binned_2d()),
    ];

    let mut entries = Vec::new();
    for (name, q) in &cases {
        assert_eq!(
            execute_exact(&ds, q).unwrap(),
            execute_exact_scalar(&ds, q).unwrap(),
            "vectorized and scalar paths must agree on {name}"
        );
        let vec_rps = time_rows_per_sec(ROWS, || {
            let _ = execute_exact(&ds, q).unwrap();
        });
        let scalar_rps = time_rows_per_sec(ROWS, || {
            let _ = execute_exact_scalar(&ds, q).unwrap();
        });
        let speedup = vec_rps / scalar_rps;
        println!(
            "{name:<32} vectorized {vec_rps:>12.0} rows/s   scalar {scalar_rps:>12.0} rows/s   speedup {speedup:.2}x"
        );
        entries.push(serde_json::json!({
            "case": name,
            "rows": ROWS,
            "vectorized_rows_per_sec": vec_rps,
            "scalar_rows_per_sec": scalar_rps,
            "speedup": speedup,
        }));
    }
    let report = serde_json::json!({ "benchmark": "scan", "cases": entries });
    std::fs::write(
        "BENCH_scan.json",
        serde_json::to_string_pretty(&report).unwrap(),
    )
    .expect("write BENCH_scan.json");
    println!("wrote BENCH_scan.json");
}
