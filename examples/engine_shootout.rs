//! Engine shoot-out: the same workload on all five system categories.
//!
//! Mirrors the paper's Figure-5 comparison at example scale: one mixed
//! workflow, one time requirement, five engines — blocking-exact,
//! progressive, offline-stratified, wander-join, and the System-Y-style
//! middleware layer.
//!
//! ```sh
//! cargo run --release --example engine_shootout
//! ```

use idebench::prelude::*;
use idebench_engine_cache::CachingAdapter;
use idebench_engine_exact::ExactAdapter;
use idebench_engine_progressive::ProgressiveAdapter;
use idebench_engine_stratified::StratifiedAdapter;
use idebench_engine_wander::WanderAdapter;
use idebench_query::CachedGroundTruth;
use std::sync::Arc;

fn main() {
    let table = idebench::datagen::flights::generate(300_000, 11);
    let dataset = Dataset::Denormalized(Arc::new(table));
    let workflows: Vec<_> = (0..3)
        .map(|i| WorkflowGenerator::new(WorkflowType::Mixed, 100 + i).generate(15))
        .collect();
    let settings = Settings::default()
        .with_time_requirement_ms(1_000)
        .with_execution(idebench::core::ExecutionMode::Virtual { work_rate: 1e5 });

    let mut gt = CachedGroundTruth::new(dataset.clone());
    let mut adapters: Vec<Box<dyn SystemAdapter>> = vec![
        Box::new(ExactAdapter::with_defaults()),
        Box::new(ProgressiveAdapter::with_defaults()),
        Box::new(StratifiedAdapter::with_defaults()),
        Box::new(WanderAdapter::with_defaults()),
        Box::new(CachingAdapter::with_defaults(ExactAdapter::with_defaults())),
    ];

    let driver = BenchmarkDriver::new(settings);
    let mut reports = Vec::new();
    for adapter in &mut adapters {
        for wf in &workflows {
            let outcome = driver
                .run_workflow(adapter.as_mut(), &dataset, wf)
                .expect("workflow runs");
            reports.push(DetailedReport::from_outcome(&outcome, &mut gt));
        }
    }
    let merged = DetailedReport::merged(reports);
    let summary = SummaryReport::from_detailed(&merged);
    println!("{}", summary.render_text());
    println!("(TR = 1s; exact violates or answers perfectly, progressive always answers");
    println!(" approximately, stratified answers from its offline sample, wander answers");
    println!(" COUNT/SUM online and blocks otherwise, cache+exact adds per-query overhead.)");
}
